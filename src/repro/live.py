"""Drive the tuners against a real transfer tool.

Everything else in this package runs on the simulation substrate; this
module is the deployment adapter: the paper's control loop (run the tool
for one epoch with the current parameters, measure, feed the tuner,
repeat while data remains) around any *actual* transfer command.

Two layers:

* :func:`tune_live` — the generic loop.  You supply an *epoch runner*:
  ``run_epoch(nc, np, duration_s) -> bytes_moved``.  The loop handles
  throughput accounting, the remaining-bytes/deadline bookkeeping of
  Algorithms 1-3 (the ``while s' > 0``), per-epoch records, and clean
  stop conditions.
* :class:`SubprocessEpochRunner` — an epoch runner that launches ``nc``
  copies of a user-templated command (the paper launches nc copies of
  ``globus-url-copy -p <np> ...``), lets them run for the control epoch,
  terminates them, and sums the bytes each reported.

The subprocess runner is fully tested against a bundled byte-pump child
process, so the adapter's process handling works out of the box; pointing
it at a real mover is a one-line command template.
"""

from __future__ import annotations

import pathlib
import shlex
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.base import Tuner
from repro.core.params import ParamSpace

#: Epoch runner contract: (nc, np, duration_s) -> bytes moved.
EpochRunner = Callable[[int, int, float], float]


@dataclass(frozen=True)
class LiveEpoch:
    """One completed control epoch of a live run."""

    index: int
    params: tuple[int, ...]
    duration_s: float
    bytes_moved: float

    @property
    def throughput_mbps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_moved / 1e6 / self.duration_s


@dataclass
class LiveResult:
    """All epochs of a live run."""

    epochs: list[LiveEpoch] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        return sum(e.bytes_moved for e in self.epochs)

    @property
    def mean_throughput_mbps(self) -> float:
        total_t = sum(e.duration_s for e in self.epochs)
        if total_t <= 0:
            return 0.0
        return self.total_bytes / 1e6 / total_t

    def params_trajectory(self) -> list[tuple[int, ...]]:
        return [e.params for e in self.epochs]


def tune_live(
    tuner: Tuner,
    space: ParamSpace,
    x0: tuple[int, ...],
    run_epoch: EpochRunner,
    *,
    epoch_s: float = 30.0,
    total_bytes: float | None = None,
    max_duration_s: float | None = None,
    max_epochs: int | None = None,
    nc_dim: int = 0,
    np_dim: int | None = None,
    fixed_np: int = 1,
    on_epoch: Callable[[LiveEpoch], None] | None = None,
) -> LiveResult:
    """The paper's control loop around a real epoch runner.

    Stops when ``total_bytes`` have moved, ``max_duration_s`` wall-clock
    elapsed, or ``max_epochs`` epochs completed — whichever comes first
    (at least one stop condition is required).
    """
    if epoch_s <= 0:
        raise ValueError("epoch_s must be positive")
    if total_bytes is None and max_duration_s is None and max_epochs is None:
        raise ValueError(
            "need a stop condition: total_bytes, max_duration_s or "
            "max_epochs"
        )
    if total_bytes is not None and total_bytes <= 0:
        raise ValueError("total_bytes must be positive")

    driver = tuner.start(x0, space)
    result = LiveResult()
    remaining = total_bytes
    elapsed = 0.0
    index = 0
    while True:
        if max_epochs is not None and index >= max_epochs:
            break
        if max_duration_s is not None and elapsed >= max_duration_s:
            break
        if remaining is not None and remaining <= 0:
            break
        params = driver.current
        nc = params[nc_dim]
        np_ = params[np_dim] if np_dim is not None else fixed_np
        moved = float(run_epoch(nc, np_, epoch_s))
        if moved < 0:
            raise ValueError("epoch runner reported negative bytes")
        if remaining is not None:
            moved = min(moved, remaining)
            remaining -= moved
        epoch = LiveEpoch(
            index=index, params=params, duration_s=epoch_s,
            bytes_moved=moved,
        )
        result.epochs.append(epoch)
        if on_epoch is not None:
            on_epoch(epoch)
        driver.observe(epoch.throughput_mbps)
        elapsed += epoch_s
        index += 1
    return result


@dataclass
class SubprocessEpochRunner:
    """Run ``nc`` copies of a command for one control epoch.

    Parameters
    ----------
    command_template:
        Template string for one copy's command line;
        ``{np}``, ``{copy}`` and ``{duration}`` are substituted
        (e.g. ``"globus-url-copy -p {np} src dst"``).
    parse_bytes:
        Extracts the bytes this copy moved from its stdout text.
    terminate_grace_s:
        Seconds between SIGTERM and SIGKILL at epoch end.
    """

    command_template: str
    parse_bytes: Callable[[str], float]
    terminate_grace_s: float = 2.0

    def __post_init__(self) -> None:
        if not self.command_template:
            raise ValueError("command_template must be non-empty")
        if self.terminate_grace_s < 0:
            raise ValueError("terminate_grace_s must be non-negative")

    def build_command(self, np_: int, copy: int, duration_s: float) -> list[str]:
        return shlex.split(
            self.command_template.format(
                np=np_, copy=copy, duration=duration_s
            )
        )

    def __call__(self, nc: int, np_: int, duration_s: float) -> float:
        if nc < 1 or np_ < 1:
            raise ValueError("nc and np must be >= 1")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        procs: list[subprocess.Popen] = []
        try:
            for copy in range(nc):
                procs.append(
                    subprocess.Popen(
                        self.build_command(np_, copy, duration_s),
                        stdout=subprocess.PIPE,
                        stderr=subprocess.DEVNULL,
                        text=True,
                    )
                )
            deadline = time.monotonic() + duration_s
            while time.monotonic() < deadline:
                if all(p.poll() is not None for p in procs):
                    break  # everyone finished early
                time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))
        finally:
            for p in procs:
                if p.poll() is None:
                    p.send_signal(signal.SIGTERM)
        total = 0.0
        for p in procs:
            try:
                out, _ = p.communicate(timeout=self.terminate_grace_s)
            except subprocess.TimeoutExpired:
                p.kill()
                out, _ = p.communicate()
            total += float(self.parse_bytes(out or ""))
        return total


#: A self-contained byte pump used by the tests (and handy for dry runs):
#: writes chunks to /dev/null for {duration} seconds at a rate that grows
#: with {np}, then prints the byte count on stdout.  Executed by file
#: path (not ``-m``) so child startup skips the package import.
_BYTE_PUMP_PATH = pathlib.Path(__file__).with_name("_byte_pump.py")
BYTE_PUMP = f"{sys.executable} {_BYTE_PUMP_PATH} {{np}} {{duration}}"
