"""Drive the tuners against a real transfer tool.

Everything else in this package runs on the simulation substrate; this
module is the deployment adapter: the paper's control loop (run the tool
for one epoch with the current parameters, measure, feed the tuner,
repeat while data remains) around any *actual* transfer command.

Two layers:

* :func:`tune_live` — the generic loop.  You supply an *epoch runner*:
  ``run_epoch(nc, np, duration_s) -> bytes_moved``.  The loop handles
  throughput accounting, the remaining-bytes/deadline bookkeeping of
  Algorithms 1-3 (the ``while s' > 0``), per-epoch records, and clean
  stop conditions.
* :class:`SubprocessEpochRunner` — an epoch runner that launches ``nc``
  copies of a user-templated command (the paper launches nc copies of
  ``globus-url-copy -p <np> ...``), lets them run for the control epoch,
  terminates them, and sums the bytes each reported.

Resilience: :func:`tune_live` accepts the same fault-campaign triple as
the simulator (:class:`~repro.faults.FaultSchedule`,
:class:`~repro.faults.RetryPolicy`,
:class:`~repro.faults.CircuitBreaker`), and drives retry backoff and the
breaker state machine in exactly the same per-epoch order as
:meth:`repro.sim.engine.Engine._dispatch_epoch` — so a campaign hardened
in simulation replays its fault/retry/breaker transitions identically
against a real tool.  A raising ``run_epoch`` never crashes the loop:
the epoch is recorded as faulted (crediting any
:attr:`~repro.faults.EpochFault.partial_bytes`) and the transfer
continues per the retry policy.  The core guarantee holds here as in the
simulator: a faulted or absent observation is never fed to the tuner.

The subprocess runner is fully tested against a bundled byte-pump child
process, so the adapter's process handling works out of the box; pointing
it at a real mover is a one-line command template.
"""

from __future__ import annotations

import pathlib
import shlex
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.base import Tuner, TunerDriver
from repro.core.params import ParamSpace
from repro.faults.breaker import CLOSED, OPEN, CircuitBreaker
from repro.faults.errors import EpochFault, SessionAborted
from repro.faults.events import (
    BLACKOUT,
    OBS_LOSS,
    SESSION_ABORT,
    STREAM_CRASH,
)
from repro.faults.retry import RetryPolicy, RetryState
from repro.faults.schedule import FaultSchedule
from repro.obs.clock import Clock, WallClock
from repro.obs.events import (
    BreakerTransition,
    EpochStart,
    RetryAttempt,
    SnapshotWritten,
    TunerAccept,
    TunerProposal,
    TunerReject,
)
from repro.obs.instrument import publish_epoch_record
from repro.sim.trace import EpochRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.checkpoint.journal import JournalWriter
    from repro.obs.instrument import Instrumentation

#: Epoch runner contract: (nc, np, duration_s) -> bytes moved.
EpochRunner = Callable[[int, int, float], float]


@dataclass(frozen=True)
class LiveEpoch:
    """One completed control epoch of a live run.

    The fault/recovery fields mirror
    :class:`repro.sim.trace.EpochRecord`: ``faulted`` marks an epoch the
    tool lost (crash, abort, blackout, launch failure), ``fault`` names
    the kind, ``retries`` is the session-cumulative retry count,
    ``breaker`` the breaker state that governed the epoch, and ``tuned``
    whether the tuner received this epoch's throughput.
    """

    index: int
    params: tuple[int, ...]
    duration_s: float
    bytes_moved: float
    faulted: bool = False
    fault: str | None = None
    retries: int = 0
    breaker: str = CLOSED
    tuned: bool = True

    @property
    def throughput_mbps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.bytes_moved / 1e6 / self.duration_s

    def to_record(self, start: float) -> EpochRecord:
        """The journal/trace form of this epoch (live has no restart
        decomposition, so ``best_case`` equals ``observed``)."""
        return EpochRecord(
            index=self.index,
            start=start,
            duration=self.duration_s,
            params=self.params,
            observed=self.throughput_mbps,
            best_case=self.throughput_mbps,
            bytes_moved=self.bytes_moved,
            faulted=self.faulted,
            fault=self.fault,
            retries=self.retries,
            breaker=self.breaker,
            tuned=self.tuned,
        )

    @classmethod
    def from_record(cls, rec: EpochRecord) -> "LiveEpoch":
        return cls(
            index=rec.index,
            params=rec.params,
            duration_s=rec.duration,
            bytes_moved=rec.bytes_moved,
            faulted=rec.faulted,
            fault=rec.fault,
            retries=rec.retries,
            breaker=rec.breaker,
            tuned=rec.tuned,
        )


@dataclass
class LiveResumeState:
    """Control-loop state reconstructed from a journal.

    Built by :func:`repro.checkpoint.resume_live_state` (replay of the
    journaled epochs + the last live snapshot) and handed to
    :func:`tune_live` via ``resume=`` so the loop continues where the
    killed run stopped: same driver state, same standing parameters,
    same retry counters, same epoch index and wall-clock/byte ledgers.
    The already-completed epochs pre-populate the new
    :class:`LiveResult`.
    """

    epochs: list[LiveEpoch]
    driver: TunerDriver
    params: tuple[int, ...]
    retry_state: RetryState | None
    index: int
    elapsed: float
    moved_bytes: float
    failed: bool = False


@dataclass
class LiveResult:
    """All epochs of a live run."""

    epochs: list[LiveEpoch] = field(default_factory=list)
    #: Set when a session abort exhausted the retry budget.
    failed: bool = False

    @property
    def total_bytes(self) -> float:
        return sum(e.bytes_moved for e in self.epochs)

    @property
    def mean_throughput_mbps(self) -> float:
        total_t = sum(e.duration_s for e in self.epochs)
        if total_t <= 0:
            return 0.0
        return self.total_bytes / 1e6 / total_t

    def params_trajectory(self) -> list[tuple[int, ...]]:
        return [e.params for e in self.epochs]

    def faulted_epochs(self) -> list[LiveEpoch]:
        return [e for e in self.epochs if e.faulted]

    def transitions(self) -> list[tuple[str | None, str, bool]]:
        """The (fault, breaker, tuned) sequence — the replayable part of
        a campaign (real throughput varies run to run; these must not)."""
        return [(e.fault, e.breaker, e.tuned) for e in self.epochs]


def _fallback_params(
    space: ParamSpace,
    params: tuple[int, ...],
    breaker: CircuitBreaker,
    nc_dim: int,
    np_dim: int | None,
) -> tuple[int, ...]:
    """The breaker's safe default mapped into the tuned space."""
    p = list(params)
    p[nc_dim] = breaker.fallback_nc
    if np_dim is not None:
        p[np_dim] = breaker.fallback_np
    return space.fbnd(tuple(p))


def tune_live(
    tuner: Tuner,
    space: ParamSpace,
    x0: tuple[int, ...],
    run_epoch: EpochRunner,
    *,
    epoch_s: float = 30.0,
    total_bytes: float | None = None,
    max_duration_s: float | None = None,
    max_epochs: int | None = None,
    nc_dim: int = 0,
    np_dim: int | None = None,
    fixed_np: int = 1,
    on_epoch: Callable[[LiveEpoch], None] | None = None,
    fault_schedule: FaultSchedule | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    rng: np.random.Generator | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Clock | None = None,
    journal: "JournalWriter | None" = None,
    journal_session: str = "live",
    resume: LiveResumeState | None = None,
    obs: "Instrumentation | None" = None,
) -> LiveResult:
    """The paper's control loop around a real epoch runner.

    Stops when ``total_bytes`` have moved, ``max_duration_s`` wall-clock
    elapsed, or ``max_epochs`` epochs completed — whichever comes first
    (at least one stop condition is required).

    Fault handling
    --------------
    ``fault_schedule`` injects the deterministic campaign: blackout and
    abort epochs skip the runner entirely (the tool is unreachable; the
    epoch's wall-clock still passes via ``sleep``), a stream crash runs
    the runner for ``at_fraction`` of the epoch and credits the partial
    bytes, observation loss runs normally but withholds the measurement
    from the tuner, and soft faults scale the credited bytes by the
    schedule's rate factor.  Independent of any schedule, an exception
    from ``run_epoch`` records a faulted epoch (``EpochFault`` carries
    its kind and partial bytes) instead of crashing the loop.

    ``retry_policy`` charges exponential backoff (served through the
    clock, counted into the elapsed wall-clock) after each faulted
    epoch while budgets allow; a session abort with no budget left sets
    ``LiveResult.failed`` and ends the run.  ``breaker`` pins the run at
    the safe default after repeated faulted epochs, exactly as in the
    simulator.  ``rng`` jitters the backoff (``None`` = deterministic
    midpoint).

    Timing
    ------
    Every wait the loop serves goes through one injectable ``clock``
    (:class:`repro.obs.clock.Clock`): pass a
    :class:`~repro.obs.clock.FakeClock` and the loop runs instantly with
    exact time accounting.  ``sleep`` is the legacy spelling — when
    ``clock`` is omitted it becomes the sleep side of a
    :class:`~repro.obs.clock.WallClock`; when both are given, ``clock``
    wins.

    Observability
    -------------
    ``obs`` publishes the same typed event stream as the simulator
    (epoch starts/ends, tuner decisions, faults, retries, breaker
    transitions, snapshots), timed by the loop's deterministic elapsed
    ledger — so two runs of the same campaign emit identical streams
    even though real throughput varies.

    Crash safety
    ------------
    ``journal`` appends every closed epoch plus a state snapshot to an
    fsynced journal (see :mod:`repro.checkpoint`); ``resume`` starts the
    loop from state reconstructed out of such a journal
    (:func:`repro.checkpoint.resume_live_state`) — the tuner continues
    its search from the last completed epoch instead of restarting from
    ``x0``, and the journaled epochs pre-populate the returned result so
    it covers the whole transfer.
    """
    if epoch_s <= 0:
        raise ValueError("epoch_s must be positive")
    if total_bytes is None and max_duration_s is None and max_epochs is None:
        raise ValueError(
            "need a stop condition: total_bytes, max_duration_s or "
            "max_epochs"
        )
    if total_bytes is not None and total_bytes <= 0:
        raise ValueError("total_bytes must be positive")
    if clock is None:
        clock = WallClock(sleep_fn=sleep)
    if obs is not None and not obs.active:
        # An inert bundle (NullBus, no metrics/spans) is dropped so the
        # loop never constructs event objects — Instrumentation.noop()
        # must cost nothing.
        obs = None
    spans = obs.spans if obs is not None else None

    result = LiveResult()
    remaining = total_bytes
    if resume is not None:
        driver = resume.driver
        retry_state = resume.retry_state
        result.epochs.extend(resume.epochs)
        result.failed = resume.failed
        elapsed = resume.elapsed
        index = resume.index
        params = tuple(resume.params)
        if remaining is not None:
            remaining = max(0.0, remaining - resume.moved_bytes)
        if result.failed:
            # The journaled run already ended in exhaustion; nothing to
            # continue.
            return result
    else:
        driver = tuner.start(x0, space)
        retry_state = (retry_policy.start()
                       if retry_policy is not None else None)
        elapsed = 0.0
        index = 0
        params = driver.current

    def _write_snapshot() -> None:
        journal.write_snapshot({
            "format": 1,
            "live": {
                "index": index,
                "elapsed": elapsed,
                "moved_bytes": result.total_bytes,
                "failed": result.failed,
            },
        })
        if obs is not None:
            obs.bus.emit(SnapshotWritten(
                time=elapsed, session=journal_session, epochs=index,
            ))

    # Event context (end time / index of the epoch being dispatched) for
    # hooks fired from inside the fault machinery.
    _ev = [0.0, 0]
    if obs is not None:
        _bus, _metrics = obs.bus, obs.metrics
        if breaker is not None:
            def _on_transition(old: str, new: str) -> None:
                _bus.emit(BreakerTransition(
                    time=_ev[0], session=journal_session, index=_ev[1],
                    old=old, new=new,
                ))
                if _metrics is not None:
                    _metrics.counter(
                        "repro_breaker_transitions_total",
                        session=journal_session, to=new,
                    ).inc()
            breaker.on_transition = _on_transition
        if retry_state is not None:
            def _on_retry(attempt: int, backoff_s: float) -> None:
                _bus.emit(RetryAttempt(
                    time=_ev[0], session=journal_session, index=_ev[1],
                    attempt=attempt, backoff_s=backoff_s,
                ))
                if _metrics is not None:
                    _metrics.counter(
                        "repro_retries_total", session=journal_session
                    ).inc()
            retry_state.on_retry = _on_retry
        if journal is not None and _metrics is not None:
            def _on_record(kind: str) -> None:
                _metrics.counter(
                    "repro_journal_records_total", record_kind=kind
                ).inc()
            journal.on_record = _on_record

    while True:
        if max_epochs is not None and index >= max_epochs:
            break
        if max_duration_s is not None and elapsed >= max_duration_s:
            break
        if remaining is not None and remaining <= 0:
            break
        nc = params[nc_dim]
        np_ = params[np_dim] if np_dim is not None else fixed_np
        if obs is not None:
            _ev[0] = elapsed + epoch_s
            _ev[1] = index
            obs.bus.emit(EpochStart(
                time=elapsed, session=journal_session, index=index,
                params=tuple(params),
            ))

        scheduled = None
        hard = None
        if fault_schedule is not None:
            hard = fault_schedule.hard_fault_at(index)
            if hard is not None:
                scheduled = hard.kind
            elif fault_schedule.observation_lost(index):
                scheduled = OBS_LOSS

        moved, fault = 0.0, scheduled
        if spans is not None:
            _t0 = spans.now()
        try:
            if scheduled in (BLACKOUT, SESSION_ABORT):
                # Tool dead or session gone: nothing to launch, the
                # epoch's wall-clock still passes.
                clock.sleep(epoch_s)
            elif scheduled == STREAM_CRASH:
                frac = hard.at_fraction
                if frac > 0:
                    moved = float(run_epoch(nc, np_, epoch_s * frac))
                clock.sleep(epoch_s * (1.0 - frac))
            else:
                moved = float(run_epoch(nc, np_, epoch_s))
                if fault_schedule is not None:
                    moved *= fault_schedule.rate_factor(index)
        except EpochFault as exc:
            moved, fault = exc.partial_bytes, exc.kind
        except SessionAborted:
            moved, fault = 0.0, SESSION_ABORT
        except Exception:
            # A dying tool must not kill the control loop: record the
            # epoch as faulted and continue per the retry policy.
            moved, fault = 0.0, "epoch-fault"
        if spans is not None:
            spans.record("epoch/transfer", max(0.0, spans.now() - _t0))
        if moved < 0:
            raise ValueError("epoch runner reported negative bytes")
        if remaining is not None:
            moved = min(moved, remaining)
            remaining -= moved

        faulted = fault is not None and fault != OBS_LOSS
        breaker_state = breaker.state if breaker is not None else CLOSED
        epoch = LiveEpoch(
            index=index, params=params, duration_s=epoch_s,
            bytes_moved=moved,
            faulted=faulted,
            fault=fault,
            retries=(retry_state.total_retries
                     if retry_state is not None else 0),
            breaker=breaker_state,
            # Same rule as the simulator: a faulted or absent observation
            # never reaches the tuner, and fallback throughput while the
            # breaker is open must not steer the search.
            tuned=fault is None and breaker_state != OPEN,
        )
        result.epochs.append(epoch)
        rec = epoch.to_record(elapsed)
        if journal is not None:
            journal.write_epoch(journal_session, rec)
        if obs is not None:
            publish_epoch_record(obs, journal_session, rec)
        if on_epoch is not None:
            on_epoch(epoch)

        # Per-epoch dispatch, same order as the simulator's
        # Engine._dispatch_epoch so campaigns replay identically.
        if retry_state is not None:
            retry_state.next_epoch()
        prev_state = breaker.state if breaker is not None else None
        if breaker is not None:
            breaker.record_epoch(faulted)

        if (fault == SESSION_ABORT and retry_state is not None
                and not retry_state.can_retry()):
            result.failed = True
            if obs is not None:
                obs.bus.emit(TunerReject(
                    time=_ev[0], session=journal_session, index=index,
                    params=tuple(params), reason="budget-exhausted",
                ))
            elapsed += epoch_s
            index += 1
            if journal is not None:
                _write_snapshot()
            break

        if breaker is not None and breaker.state == OPEN:
            params = _fallback_params(space, params, breaker, nc_dim, np_dim)
            if obs is not None:
                obs.bus.emit(TunerReject(
                    time=_ev[0], session=journal_session, index=index,
                    params=tuple(params), reason="breaker-open",
                ))
        elif breaker is not None and prev_state == OPEN:
            params = driver.current  # probe with the standing proposal
            if obs is not None:
                obs.bus.emit(TunerProposal(
                    time=_ev[0], session=journal_session, index=index,
                    params=tuple(params), observed=None,
                ))
                obs.bus.emit(TunerAccept(
                    time=_ev[0], session=journal_session, index=index,
                    params=tuple(params),
                ))
        elif faulted:
            if retry_state is not None and retry_state.can_retry():
                backoff = retry_state.record_failure(rng=rng)
                if backoff > 0:
                    clock.sleep(backoff)
                    elapsed += backoff
            # relaunch with the same parameters
            if obs is not None:
                obs.bus.emit(TunerReject(
                    time=_ev[0], session=journal_session, index=index,
                    params=tuple(params), reason="faulted",
                ))
        elif fault == OBS_LOSS:
            if retry_state is not None:
                retry_state.record_success()
            # hold parameters; the tuner observes nothing
            if obs is not None:
                obs.bus.emit(TunerReject(
                    time=_ev[0], session=journal_session, index=index,
                    params=tuple(params), reason="obs-loss",
                ))
        else:
            if retry_state is not None:
                retry_state.record_success()
            if spans is not None:
                _tp = spans.now()
            params = driver.observe(epoch.throughput_mbps)
            if spans is not None:
                spans.record("epoch/propose", max(0.0, spans.now() - _tp))
            if obs is not None:
                obs.bus.emit(TunerProposal(
                    time=_ev[0], session=journal_session, index=index,
                    params=tuple(params), observed=epoch.throughput_mbps,
                ))
                obs.bus.emit(TunerAccept(
                    time=_ev[0], session=journal_session, index=index,
                    params=tuple(params),
                ))

        elapsed += epoch_s
        index += 1
        if journal is not None:
            _write_snapshot()
    if journal is not None:
        journal.write_end()
    return result


def parse_last_count(text: str) -> float:
    """Bytes from the *last* parseable line of a progress-mode child.

    A copy SIGKILLed mid-epoch leaves its most recent progress line as
    the partial-byte record (a final line truncated mid-write is
    skipped); a copy that never printed counts as zero.
    """
    for line in reversed(text.strip().splitlines()):
        try:
            return float(line.strip())
        except ValueError:
            continue
    return 0.0


@dataclass
class SubprocessEpochRunner:
    """Run ``nc`` copies of a command for one control epoch.

    Parameters
    ----------
    command_template:
        Template string for one copy's command line;
        ``{np}``, ``{copy}`` and ``{duration}`` are substituted
        (e.g. ``"globus-url-copy -p {np} src dst"``).
    parse_bytes:
        Extracts the bytes this copy moved from its stdout text.  A
        parse failure on a copy that died (nonzero/signaled exit) counts
        that copy as zero instead of losing the epoch.
    terminate_grace_s:
        Per-child timeout between SIGTERM and SIGKILL at epoch end.
    launch_retries / launch_backoff_s:
        Relaunch attempts (exponential backoff) when spawning a copy
        fails.  Exhausting them raises
        :class:`~repro.faults.EpochFault` with the bytes the
        already-running copies managed as ``partial_bytes``.
    on_launch:
        Test/observability hook called as ``on_launch(copy, proc)``
        right after each copy starts.
    sleep:
        Injectable delay function used for launch backoff.
    clock:
        The single time source for epoch deadlines and poll waits
        (defaults to a real :class:`~repro.obs.clock.WallClock`); the
        runner never reads ``time.monotonic``/``time.sleep`` directly.

    Every child is reaped before :meth:`__call__` returns, whatever
    failed mid-epoch — no orphans survive the epoch.
    """

    command_template: str
    parse_bytes: Callable[[str], float]
    terminate_grace_s: float = 2.0
    launch_retries: int = 0
    launch_backoff_s: float = 0.5
    on_launch: Callable[[int, subprocess.Popen], None] | None = None
    sleep: Callable[[float], None] = time.sleep
    clock: Clock = field(default_factory=WallClock)

    def __post_init__(self) -> None:
        if not self.command_template:
            raise ValueError("command_template must be non-empty")
        if self.terminate_grace_s < 0:
            raise ValueError("terminate_grace_s must be non-negative")
        if self.launch_retries < 0:
            raise ValueError("launch_retries must be non-negative")
        if self.launch_backoff_s < 0:
            raise ValueError("launch_backoff_s must be non-negative")

    def build_command(self, np_: int, copy: int, duration_s: float) -> list[str]:
        return shlex.split(
            self.command_template.format(
                np=np_, copy=copy, duration=duration_s
            )
        )

    def _launch(
        self, np_: int, copy: int, duration_s: float
    ) -> subprocess.Popen:
        attempt = 0
        while True:
            try:
                return subprocess.Popen(
                    self.build_command(np_, copy, duration_s),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    text=True,
                )
            except OSError:
                if attempt >= self.launch_retries:
                    raise
                self.sleep(self.launch_backoff_s * 2.0 ** attempt)
                attempt += 1

    def __call__(self, nc: int, np_: int, duration_s: float) -> float:
        if nc < 1 or np_ < 1:
            raise ValueError("nc and np must be >= 1")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        procs: list[subprocess.Popen] = []
        outs: list[str] = []
        launch_error: OSError | None = None
        try:
            try:
                for copy in range(nc):
                    p = self._launch(np_, copy, duration_s)
                    procs.append(p)
                    if self.on_launch is not None:
                        self.on_launch(copy, p)
            except OSError as exc:
                launch_error = exc
            if launch_error is None:
                deadline = self.clock.now() + duration_s
            else:
                # A launch failure ends the epoch early, but copies that
                # did start get a short grace window to flush whatever
                # partial output they produced before teardown.
                deadline = self.clock.now() + min(
                    duration_s, self.terminate_grace_s
                )
            while self.clock.now() < deadline:
                if all(p.poll() is not None for p in procs):
                    break  # everyone finished early
                self.clock.sleep(
                    min(0.05, max(0.0, deadline - self.clock.now()))
                )
            for p in procs:
                if p.poll() is None:
                    p.send_signal(signal.SIGTERM)
            for p in procs:
                try:
                    out, _ = p.communicate(timeout=self.terminate_grace_s)
                except subprocess.TimeoutExpired:
                    p.kill()
                    out, _ = p.communicate()
                outs.append(out or "")
        finally:
            # Orphan reaping: no child outlives the epoch, whatever
            # failed above.
            for p in procs:
                if p.poll() is None:
                    p.kill()
            for p in procs:
                if p.returncode is None:
                    try:
                        p.wait(timeout=self.terminate_grace_s)
                    except Exception:  # pragma: no cover - defensive
                        pass
        total = 0.0
        for p, out in zip(procs, outs):
            try:
                total += float(self.parse_bytes(out))
            except (TypeError, ValueError):
                if p.returncode == 0:
                    raise
                # killed/crashed copy with unparseable output: partial
                # credit is whatever parse_bytes could read — here, none.
        if launch_error is not None:
            raise EpochFault(
                f"failed to launch copy {len(procs)} of {nc}: "
                f"{launch_error}",
                kind="launch-failure",
                partial_bytes=total,
            ) from launch_error
        return total


#: A self-contained byte pump used by the tests (and handy for dry runs):
#: writes chunks to /dev/null for {duration} seconds at a rate that grows
#: with {np}, then prints the byte count on stdout.  Executed by file
#: path (not ``-m``) so child startup skips the package import.
_BYTE_PUMP_PATH = pathlib.Path(__file__).with_name("_byte_pump.py")
BYTE_PUMP = f"{sys.executable} {_BYTE_PUMP_PATH} {{np}} {{duration}}"

#: Progress-mode byte pump: prints the running total every 0.2 s, so a
#: copy killed mid-epoch still leaves its partial count for
#: :func:`parse_last_count`.
BYTE_PUMP_PROGRESS = (
    f"{sys.executable} {_BYTE_PUMP_PATH} {{np}} {{duration}} 0.2"
)
