"""repro — reproduction of *Improving Data Transfer Throughput with Direct
Search Optimization* (Balaprakash et al., ICPP 2016).

The package implements the paper's direct-search stream tuners (cd-tuner,
cs-tuner, nm-tuner), the baselines it compares against (Globus defaults,
Balman's heur1, Yildirim's heur2), and every substrate the evaluation
needs — a fluid WAN/TCP model, a source-host CPU scheduler with external
load, and a `globus-url-copy` process/restart model — plus the experiment
harness that regenerates each figure of the paper.

Quickstart::

    from repro import ANL_UC, NmTuner, run_single, ExternalLoad

    trace = run_single(ANL_UC, NmTuner(), load=ExternalLoad(ext_cmp=16),
                       duration_s=1800, seed=1)
    print(trace.mean_observed(from_time=900))     # steady-state MB/s
    print(trace.epoch_param(0))                   # concurrency trajectory
"""

from repro.core import (
    AimdTuner,
    BanditTuner,
    CdTuner,
    CsTuner,
    CusumMonitor,
    DeltaPctMonitor,
    EpochHistory,
    EwmaMonitor,
    FaultFilterMonitor,
    GssTuner,
    HackerModelTuner,
    Heur1Tuner,
    Heur2Tuner,
    HjTuner,
    JointTuner,
    NewtonModelTuner,
    NmTuner,
    ParamSpace,
    SpsaTuner,
    StaticTuner,
    Tuner,
    default_globus_params,
)
from repro.cache import RunCache, activated, default_cache_dir
from repro.checkpoint import (
    JournalWriter,
    read_journal,
    resume_run,
    run_journaled,
    warm_start_x0,
)
from repro.endpoint import ExternalLoad, HostSpec, LoadSchedule, NEHALEM
from repro.experiments import (
    ANL_TACC,
    ANL_UC,
    Scenario,
    run_joint,
    run_pair,
    run_single,
    standard_tuners,
)
from repro.faults import (
    CircuitBreaker,
    EpochFault,
    FaultError,
    FaultEvent,
    FaultSchedule,
    RetryPolicy,
    SessionAborted,
)
from repro.gridftp import ClientModel, GlobusPolicy, RestartModel, TransferSpec
from repro.live import LiveEpoch, LiveResult, SubprocessEpochRunner, tune_live
from repro.net import CUBIC, HTCP, RENO, SCALABLE, Link, Path, TcpModel, Topology
from repro.sim import Engine, EngineConfig, Trace, TransferSession
from repro.service import (
    FleetClient,
    FleetServer,
    FleetService,
    TenantSpec,
)

__version__ = "1.0.0"

__all__ = [
    # core tuners
    "Tuner",
    "StaticTuner",
    "CdTuner",
    "CsTuner",
    "NmTuner",
    "Heur1Tuner",
    "Heur2Tuner",
    "HjTuner",
    "SpsaTuner",
    "GssTuner",
    "BanditTuner",
    "AimdTuner",
    "HackerModelTuner",
    "NewtonModelTuner",
    "DeltaPctMonitor",
    "EwmaMonitor",
    "CusumMonitor",
    "FaultFilterMonitor",
    "JointTuner",
    "ParamSpace",
    "EpochHistory",
    "default_globus_params",
    # substrates
    "TcpModel",
    "RENO",
    "CUBIC",
    "HTCP",
    "SCALABLE",
    "Link",
    "Path",
    "Topology",
    "HostSpec",
    "NEHALEM",
    "ExternalLoad",
    "LoadSchedule",
    "ClientModel",
    "RestartModel",
    "GlobusPolicy",
    "TransferSpec",
    # resilience layer
    "FaultEvent",
    "FaultSchedule",
    "RetryPolicy",
    "CircuitBreaker",
    "FaultError",
    "EpochFault",
    "SessionAborted",
    # result cache
    "RunCache",
    "activated",
    "default_cache_dir",
    # checkpoint/resume
    "JournalWriter",
    "read_journal",
    "run_journaled",
    "resume_run",
    "warm_start_x0",
    # live adapter
    "tune_live",
    "SubprocessEpochRunner",
    "LiveEpoch",
    "LiveResult",
    # fleet service
    "FleetService",
    "FleetServer",
    "FleetClient",
    "TenantSpec",
    # simulation
    "Engine",
    "EngineConfig",
    "TransferSession",
    "Trace",
    # experiments
    "Scenario",
    "ANL_UC",
    "ANL_TACC",
    "standard_tuners",
    "run_single",
    "run_pair",
    "run_joint",
    "__version__",
]
