"""GridFTP protocol emulation: control channel, striping, EBLOCK framing.

`globus-url-copy` speaks GridFTP (RFC 959 FTP extended by GFD.020): a
*control channel* negotiates options and starts transfers, and *data
channels* — ``np`` parallel TCP streams per server pair — carry extended
blocks (EBLOCK mode), each prefixed with a 17-byte header carrying flags,
length and offset so blocks can arrive out of order.

The fluid engine only needs two numbers from this layer, both derived
here from first principles instead of being magic constants:

* :func:`ControlSession.startup_round_trips` — how many control-channel
  RTTs a cold start costs (the protocol part of the restart overhead the
  paper measures);
* :func:`eblock_efficiency` — the fraction of data-channel bytes that is
  payload rather than EBLOCK headers.

The control-channel state machine is fully implemented and validated so
the emulation can also serve protocol-level tests (command sequencing,
striped-passive address allocation, block-distribution fairness).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

#: EBLOCK header: 1 flag byte + 8-byte length + 8-byte offset (GFD.020).
EBLOCK_HEADER_BYTES = 17


class ProtocolError(Exception):
    """Raised on out-of-sequence or malformed control-channel commands."""


class SessionState(enum.Enum):
    CONNECTED = "connected"
    AUTHENTICATED = "authenticated"
    CONFIGURED = "configured"
    TRANSFERRING = "transferring"
    CLOSED = "closed"


@dataclass(frozen=True)
class Reply:
    """An FTP-style numeric reply."""

    code: int
    text: str

    @property
    def ok(self) -> bool:
        return 200 <= self.code < 400


@dataclass
class ControlSession:
    """One GridFTP control-channel session's command state machine.

    Drives the command sequence a `globus-url-copy` invocation issues:
    authenticate, set MODE E / TYPE I, negotiate buffer size and
    parallelism, open (striped) passive data endpoints, then RETR/STOR.
    Out-of-order commands raise :class:`ProtocolError` — the tests pin
    the legal orderings.
    """

    server_name: str = "gridftp-server"
    state: SessionState = SessionState.CONNECTED
    mode: str = "S"                 #: S(tream) or E(xtended block)
    type_: str = "A"                #: A(SCII) or I(mage)
    parallelism: int = 1
    tcp_buffer_bytes: int = 87380   #: Linux default
    stripes: tuple[str, ...] = ()   #: data-node addresses from SPAS
    commands_issued: list[str] = field(default_factory=list)
    round_trips: int = 0

    # -- helpers -----------------------------------------------------------

    def _require(self, *states: SessionState) -> None:
        if self.state not in states:
            raise ProtocolError(
                f"command illegal in state {self.state.value!r}"
            )

    def _reply(self, command: str, code: int, text: str) -> Reply:
        self.commands_issued.append(command)
        self.round_trips += 1
        return Reply(code, text)

    # -- authentication ------------------------------------------------

    def auth(self, subject: str) -> Reply:
        """GSI authentication handshake (AUTH GSSAPI + ADAT exchanges).

        Costs three round trips (AUTH, two ADAT legs), modeled as one
        command with the extra RTTs added to the counter.
        """
        self._require(SessionState.CONNECTED)
        if not subject:
            raise ProtocolError("empty security subject")
        self.round_trips += 2  # ADAT exchange legs
        self.state = SessionState.AUTHENTICATED
        return self._reply(f"AUTH GSSAPI {subject}", 235, "auth complete")

    # -- configuration ---------------------------------------------------

    def set_mode(self, mode: str) -> Reply:
        self._require(SessionState.AUTHENTICATED, SessionState.CONFIGURED)
        if mode not in ("S", "E"):
            raise ProtocolError(f"unsupported mode {mode!r}")
        self.mode = mode
        self.state = SessionState.CONFIGURED
        return self._reply(f"MODE {mode}", 200, "mode set")

    def set_type(self, type_: str) -> Reply:
        self._require(SessionState.AUTHENTICATED, SessionState.CONFIGURED)
        if type_ not in ("A", "I"):
            raise ProtocolError(f"unsupported type {type_!r}")
        self.type_ = type_
        self.state = SessionState.CONFIGURED
        return self._reply(f"TYPE {type_}", 200, "type set")

    def set_buffer(self, nbytes: int) -> Reply:
        self._require(SessionState.AUTHENTICATED, SessionState.CONFIGURED)
        if nbytes <= 0:
            raise ProtocolError("buffer size must be positive")
        self.tcp_buffer_bytes = nbytes
        self.state = SessionState.CONFIGURED
        return self._reply(f"SITE BUFSIZE {nbytes}", 200, "buffer set")

    def set_parallelism(self, np_: int) -> Reply:
        """OPTS RETR Parallelism=np,np,np; requires MODE E first."""
        self._require(SessionState.CONFIGURED)
        if self.mode != "E":
            raise ProtocolError("parallelism requires MODE E")
        if np_ < 1:
            raise ProtocolError("parallelism must be >= 1")
        self.parallelism = np_
        return self._reply(
            f"OPTS RETR Parallelism={np_},{np_},{np_};", 200, "opts set"
        )

    # -- data-channel setup ----------------------------------------------

    def spas(self, n_nodes: int = 1, base_port: int = 50_000) -> Reply:
        """Striped passive: allocate one listening endpoint per data node."""
        self._require(SessionState.CONFIGURED)
        if n_nodes < 1:
            raise ProtocolError("need at least one data node")
        self.stripes = tuple(
            f"{self.server_name}-dn{i}:{base_port + i}" for i in range(n_nodes)
        )
        return self._reply(f"SPAS", 229, " ".join(self.stripes))

    # -- transfer ----------------------------------------------------------

    def retr(self, path: str) -> Reply:
        self._require(SessionState.CONFIGURED)
        if not self.stripes:
            raise ProtocolError("no data channels: call spas() first")
        if not path:
            raise ProtocolError("empty path")
        self.state = SessionState.TRANSFERRING
        return self._reply(f"RETR {path}", 150, "opening data connection")

    def complete(self) -> Reply:
        """226 Transfer complete."""
        self._require(SessionState.TRANSFERRING)
        self.state = SessionState.CONFIGURED
        return self._reply("<226>", 226, "transfer complete")

    def abort(self) -> Reply:
        self._require(SessionState.TRANSFERRING)
        self.state = SessionState.CONFIGURED
        return self._reply("ABOR", 226, "aborted")

    def quit(self) -> Reply:
        if self.state == SessionState.CLOSED:
            raise ProtocolError("already closed")
        self.state = SessionState.CLOSED
        return self._reply("QUIT", 221, "goodbye")

    # -- derived quantities ------------------------------------------------

    @classmethod
    def startup_round_trips(cls, *, striped: bool = False) -> int:
        """Control-channel RTTs from TCP connect to first data byte.

        TCP handshake (1) + AUTH/ADAT (3) + MODE/TYPE/BUFSIZE/OPTS (4) +
        SPAS (1) + RETR (1) = 10, plus one more SPAS exchange for striped
        two-party setup.
        """
        return 11 if striped else 10


def eblock_efficiency(block_size_bytes: int) -> float:
    """Payload fraction of EBLOCK-mode data channels.

    Each block of ``block_size_bytes`` payload carries a 17-byte header.
    GridFTP's default block size is 256 KiB, making the framing overhead
    negligible — which is why the fluid model may ignore it — but small
    blocks (interactive tools, small-file datasets) pay measurably.
    """
    if block_size_bytes <= 0:
        raise ValueError("block size must be positive")
    return block_size_bytes / (block_size_bytes + EBLOCK_HEADER_BYTES)


def distribute_blocks(
    total_bytes: int, block_size_bytes: int, n_streams: int
) -> list[int]:
    """Round-robin EBLOCK assignment of a file across ``n_streams``.

    Returns the payload bytes each stream carries.  The last (partial)
    block goes to the stream whose turn it is — the same greedy policy
    the GridFTP server uses, which keeps the imbalance below one block.
    """
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    if block_size_bytes <= 0:
        raise ValueError("block size must be positive")
    if n_streams < 1:
        raise ValueError("n_streams must be >= 1")
    full_blocks, remainder = divmod(total_bytes, block_size_bytes)
    per_stream = [
        (full_blocks // n_streams
         + (1 if i < full_blocks % n_streams else 0)) * block_size_bytes
        for i in range(n_streams)
    ]
    if remainder:
        per_stream[full_blocks % n_streams] += remainder
    return per_stream


def startup_time_s(
    rtt_s: float,
    *,
    nc: int = 1,
    striped: bool = False,
    exec_load_s: float = 0.5,
    per_channel_connect_s: float = 0.0,
) -> float:
    """Protocol-derived cold-start time for ``nc`` tool instances.

    ``nc`` control sessions are established concurrently, so the RTT cost
    is paid once; per-instance executable/buffer setup (``exec_load_s``)
    is serialized per core group and grows mildly with nc, matching the
    shape of :class:`repro.gridftp.client.RestartModel` (which remains
    the calibrated model the engine uses — this function exists to show
    the restart constants are protocol-plausible, and is tested against
    the RestartModel's no-load value).
    """
    if rtt_s <= 0:
        raise ValueError("rtt must be positive")
    if nc < 1:
        raise ValueError("nc must be >= 1")
    if exec_load_s < 0 or per_channel_connect_s < 0:
        raise ValueError("cost terms must be non-negative")
    rtts = ControlSession.startup_round_trips(striped=striped)
    return (
        rtts * rtt_s
        + exec_load_s * (1.0 + math.log2(nc))
        + per_channel_connect_s * nc
    )
