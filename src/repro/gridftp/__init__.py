"""GridFTP / globus-url-copy substrate.

Emulates the transfer tool the paper drives:

* :mod:`repro.gridftp.transfer` — transfer specifications and byte
  accounting (the ``s'`` bookkeeping of Algorithms 1-3).
* :mod:`repro.gridftp.client` — the `globus-url-copy` process model:
  ``nc`` single-core processes with ``np`` TCP streams each, and the
  restart-cost model behind the paper's observed-vs-best-case gap.
* :mod:`repro.gridftp.globus` — Globus transfer service policy (default
  parameters, fault injection, retries).
* :mod:`repro.gridftp.diskio` — extension: disk-to-disk transfers over a
  heterogeneous file-size mix with pipelining (paper future work 1).
"""

from repro.gridftp.transfer import TransferSpec, TransferState
from repro.gridftp.client import ClientModel, RestartModel
from repro.gridftp.globus import GlobusPolicy, FaultModel
from repro.gridftp.diskio import DiskSpec, FileSet, disk_rate_cap_mbps

__all__ = [
    "TransferSpec",
    "TransferState",
    "ClientModel",
    "RestartModel",
    "GlobusPolicy",
    "FaultModel",
    "DiskSpec",
    "FileSet",
    "disk_rate_cap_mbps",
]
