"""Disk-to-disk transfers over heterogeneous file sets (extension).

The paper's evaluation is memory-to-memory; its future work item (1) is
"broadening the approach to enable disk-to-disk optimization over sets of
transfers with different file sizes".  This module supplies the substrate:
a storage-rate model and a file-set model with a *pipelining* parameter
(the third knob of Yildirim et al. [25], alongside parallelism and
concurrency).  Pipelining keeps ``pp`` file requests in flight per stream,
amortizing the per-file control-channel round trip that otherwise
dominates lots-of-small-files workloads.

The engine consumes a single number from here: an extra rate cap
(:func:`disk_rate_cap_mbps`) layered onto the network/CPU caps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import MB


@dataclass(frozen=True)
class DiskSpec:
    """Storage subsystem at one endpoint.

    Parameters
    ----------
    streaming_rate_mbps:
        Sequential read (or write) bandwidth in MB/s.
    per_file_overhead_s:
        Seek/open/close cost charged once per file.
    parallel_scaling:
        Fraction of extra streaming bandwidth gained per additional
        concurrent accessor (parallel file systems scale sublinearly;
        0 = single-spindle disk, 1 = perfectly striped).
    max_parallel_accessors:
        Accessor count beyond which no further scaling happens.
    """

    streaming_rate_mbps: float = 800.0
    per_file_overhead_s: float = 0.05
    parallel_scaling: float = 0.3
    max_parallel_accessors: int = 16

    def __post_init__(self) -> None:
        if self.streaming_rate_mbps <= 0:
            raise ValueError("streaming_rate_mbps must be positive")
        if self.per_file_overhead_s < 0:
            raise ValueError("per_file_overhead_s must be non-negative")
        if not 0 <= self.parallel_scaling <= 1:
            raise ValueError("parallel_scaling must be in [0, 1]")
        if self.max_parallel_accessors < 1:
            raise ValueError("max_parallel_accessors must be >= 1")

    def aggregate_rate_mbps(self, accessors: int) -> float:
        """Streaming bandwidth available to ``accessors`` concurrent
        readers/writers."""
        if accessors < 1:
            raise ValueError("accessors must be >= 1")
        eff = min(accessors, self.max_parallel_accessors)
        return self.streaming_rate_mbps * (
            1.0 + self.parallel_scaling * (eff - 1)
        )


@dataclass(frozen=True)
class FileSet:
    """A dataset of files with a lognormal size distribution.

    Parameters
    ----------
    n_files:
        Number of files.
    mean_bytes:
        Mean file size in bytes.
    sigma:
        Lognormal shape parameter (0 = all files equal).
    """

    n_files: int
    mean_bytes: float = 100 * MB
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.n_files < 1:
            raise ValueError("n_files must be >= 1")
        if self.mean_bytes <= 0:
            raise ValueError("mean_bytes must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @property
    def total_bytes(self) -> float:
        return self.n_files * self.mean_bytes

    def sample_sizes(self, rng: np.random.Generator) -> np.ndarray:
        """Draw the individual file sizes (mean-preserving lognormal)."""
        if self.sigma == 0.0:
            return np.full(self.n_files, self.mean_bytes)
        mu = np.log(self.mean_bytes) - 0.5 * self.sigma**2
        return rng.lognormal(mu, self.sigma, size=self.n_files)


def disk_rate_cap_mbps(
    disk: DiskSpec,
    files: FileSet,
    nc: int,
    np_: int,
    pp: int,
    rtt_s: float,
) -> float:
    """Effective disk-to-disk rate cap for a parameter setting, MB/s.

    Combines the storage bandwidth available to ``nc`` accessors with the
    per-file cost: each file pays the disk's per-file overhead plus one
    control-channel RTT, divided by the pipelining depth ``pp`` (``pp``
    requests in flight hide all but ``1/pp`` of the latency) and spread
    over ``nc * np`` streams fetching files in parallel.

    The cap is the harmonic combination ``total_bytes / (streaming_time +
    residual_per_file_time)`` expressed as a rate.
    """
    if pp < 1:
        raise ValueError("pp must be >= 1")
    if rtt_s < 0:
        raise ValueError("rtt_s must be non-negative")
    streams = nc * np_  # validates nc, np via multiplication below
    if streams < 1:
        raise ValueError("nc and np must be >= 1")
    bandwidth = disk.aggregate_rate_mbps(nc)
    streaming_time = files.total_bytes / (bandwidth * MB)
    per_file = (disk.per_file_overhead_s + rtt_s) / pp
    overhead_time = files.n_files * per_file / streams
    total_time = streaming_time + overhead_time
    return files.total_bytes / total_time / MB
