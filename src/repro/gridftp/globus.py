"""Globus transfer service policy.

Globus transfer (the hosted service, [2] in the paper) "selects transfer
protocol parameters; monitors and retries transfers when there are faults".
This module provides the pieces the experiments use:

* :class:`GlobusPolicy` — the default parameter choice; for large files
  concurrency 2 and parallelism 8 (the paper's ``default`` baseline).
* :class:`FaultModel` — per-epoch fault injection with bounded retries,
  used by the failure-injection tests and the robustness example.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.units import MB

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.schedule import FaultSchedule


@dataclass(frozen=True)
class GlobusPolicy:
    """Static parameter selection mimicking the Globus service defaults."""

    #: files at or above this size get the large-file settings (Globus
    #: tiers its defaults by file size; 100 MB is the relevant cutoff for
    #: the paper's memory-to-memory streams).
    large_file_threshold_bytes: float = 100 * MB
    large_nc: int = 2
    large_np: int = 8
    small_nc: int = 2
    small_np: int = 2

    def __post_init__(self) -> None:
        if self.large_file_threshold_bytes <= 0:
            raise ValueError("threshold must be positive")
        for v in (self.large_nc, self.large_np, self.small_nc, self.small_np):
            if v < 1:
                raise ValueError("default parameters must be >= 1")

    def choose(self, mean_file_bytes: float) -> tuple[int, int]:
        """(nc, np) for a transfer whose files average ``mean_file_bytes``."""
        if mean_file_bytes <= 0:
            raise ValueError("mean_file_bytes must be positive")
        if mean_file_bytes >= self.large_file_threshold_bytes:
            return (self.large_nc, self.large_np)
        return (self.small_nc, self.small_np)


@dataclass(frozen=True)
class FaultModel:
    """Random transfer faults with a retry budget.

    .. deprecated::
        Superseded by :mod:`repro.faults` — deterministic fault
        *schedules* plus an explicit :class:`~repro.faults.RetryPolicy`
        and :class:`~repro.faults.CircuitBreaker`.  This per-epoch coin
        flip is kept as a thin back-compat wrapper; use
        :meth:`as_schedule` to convert an existing configuration.

    A fault aborts the tool mid-epoch; the service notices and relaunches
    it (paying a restart), up to ``max_retries`` times per epoch before the
    session is declared failed.  ``fault_prob_per_epoch`` is a
    probability on the closed interval [0, 1]: 0 never faults, 1 faults
    every epoch.
    """

    fault_prob_per_epoch: float = 0.0
    max_retries: int = 3

    def __post_init__(self) -> None:
        if not 0 <= self.fault_prob_per_epoch <= 1:
            raise ValueError(
                "fault_prob_per_epoch is a probability and must lie in "
                f"the closed interval [0, 1]; got {self.fault_prob_per_epoch!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.fault_prob_per_epoch > 0:
            warnings.warn(
                "FaultModel is deprecated; use repro.faults.FaultSchedule "
                "(e.g. FaultModel.as_schedule) with a RetryPolicy instead",
                DeprecationWarning,
                stacklevel=2,
            )

    def draw_fault(self, rng: np.random.Generator) -> bool:
        """True if a fault strikes this epoch."""
        if self.fault_prob_per_epoch == 0.0:
            return False
        return bool(rng.random() < self.fault_prob_per_epoch)

    def as_schedule(self, seed: int, n_epochs: int) -> "FaultSchedule":
        """The equivalent deterministic campaign: the same Bernoulli coin
        flip, pre-drawn into a replayable stream-crash schedule."""
        from repro.faults.schedule import FaultSchedule
        from repro.faults.events import STREAM_CRASH

        return FaultSchedule.bernoulli(
            seed, n_epochs,
            fault_rate=self.fault_prob_per_epoch,
            kinds=(STREAM_CRASH,),
        )
