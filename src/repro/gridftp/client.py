"""The `globus-url-copy` process model.

The paper implements concurrency ``nc`` by launching ``nc`` copies of
`globus-url-copy` (pinned on alternate sockets) and parallelism ``np`` via
the tool's ``-p`` flag, so a setting ``(nc, np)`` runs ``nc`` single-core
processes with ``np`` TCP streams each.  Two consequences the model
captures:

* **concurrency scales across cores, parallelism does not** — each process
  is limited to one core; extra streams inside a process share it (with a
  small per-thread efficiency penalty);
* **restart overhead** — the tuners stop and relaunch all copies every
  control epoch ("load the executable, allocate the buffer and required
  data structures, create the required number of threads"); the dead time
  grows with the compute contention on the source.  The paper measures the
  resulting observed-vs-best-case gap at ~17% (no load), ~33%
  (ext.cmp=16), ~50% (ext.cmp=64) and ~15% (network load only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.endpoint.host import HostSpec
from repro.noise import lognormal_factor


@dataclass(frozen=True)
class RestartModel:
    """Dead time incurred when the transfer tool is (re)started.

    ``restart_time = (base_s + per_proc_s * nc) * contention`` with
    ``contention = min(1 + beta * g / (1 - g), max_contention)``,

    where ``g`` is the fraction of source CPU held by external compute
    load during the startup window.  Contention saturates at
    ``max_contention``: process startup is dominated by page-cache reads
    and memory allocation that degrade only so far under CPU pressure.
    The result is clamped to ``max_fraction_of_epoch`` of the control
    epoch so an epoch always moves *some* data, and multiplied by a
    lognormal jitter.

    Parameters
    ----------
    warm_np_factor:
        Extension (paper future work 2): fraction of the cost paid when
        only ``np`` changed and processes can be reused.  1.0 = always
        cold restart (the paper's behaviour).
    """

    base_s: float = 5.0
    per_proc_s: float = 0.01
    cmp_beta: float = 0.8
    max_contention: float = 3.0
    max_fraction_of_epoch: float = 0.9
    jitter_sigma: float = 0.10
    warm_np_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.per_proc_s < 0:
            raise ValueError("restart cost terms must be non-negative")
        if self.cmp_beta < 0:
            raise ValueError("cmp_beta must be non-negative")
        if self.max_contention < 1:
            raise ValueError("max_contention must be >= 1")
        if not 0 < self.max_fraction_of_epoch <= 1:
            raise ValueError("max_fraction_of_epoch must be in (0, 1]")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")
        if not 0 <= self.warm_np_factor <= 1:
            raise ValueError("warm_np_factor must be in [0, 1]")

    def restart_time_s(
        self,
        nc: int,
        cmp_core_fraction: float,
        epoch_s: float,
        *,
        warm: bool = False,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Dead time in seconds for starting ``nc`` copies.

        Parameters
        ----------
        nc:
            Number of processes being launched.
        cmp_core_fraction:
            Fraction ``g`` in [0, 1) of host CPU held by external compute
            load while the tool starts.
        epoch_s:
            Control epoch length (clamp reference).
        warm:
            True when only ``np`` changed and warm restart is enabled.
        rng:
            Optional generator for lognormal jitter; None disables jitter.
        """
        if nc < 1:
            raise ValueError("nc must be >= 1")
        if not 0 <= cmp_core_fraction < 1:
            raise ValueError("cmp_core_fraction must be in [0, 1)")
        if epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        base = self.base_s + self.per_proc_s * nc
        contention = min(
            1.0 + self.cmp_beta * cmp_core_fraction / (1.0 - cmp_core_fraction),
            self.max_contention,
        )
        t = base * contention
        if warm:
            t *= self.warm_np_factor
        if rng is not None:
            t *= lognormal_factor(rng, self.jitter_sigma)
        return min(t, self.max_fraction_of_epoch * epoch_s)


@dataclass(frozen=True)
class ClientModel:
    """Maps a parameter setting onto processes, threads and CPU demand."""

    restart: RestartModel = RestartModel()

    @staticmethod
    def processes(nc: int) -> int:
        """OS processes launched for concurrency ``nc``."""
        if nc < 1:
            raise ValueError("nc must be >= 1")
        return nc

    @staticmethod
    def streams(nc: int, np_: int) -> int:
        """Total TCP streams: the product the paper optimizes."""
        if nc < 1 or np_ < 1:
            raise ValueError("nc and np must be >= 1")
        return nc * np_

    @staticmethod
    def thread_efficiency(np_: int, host: HostSpec) -> float:
        """Per-process efficiency with ``np`` streams sharing one core.

        1.0 for a single stream, decaying linearly with the host's
        ``thread_overhead``, floored at 0.5 (a process never loses more
        than half its core to its own threads).
        """
        if np_ < 1:
            raise ValueError("np must be >= 1")
        return max(0.5, 1.0 - host.thread_overhead * (np_ - 1))

    def cpu_capacity_mbps(
        self, np_: int, share_cores: float, host: HostSpec
    ) -> float:
        """Aggregate CPU-limited rate of the transfer's processes, MB/s,
        given the total core share the scheduler granted them."""
        if share_cores < 0:
            raise ValueError("share_cores must be non-negative")
        return (
            share_cores
            * host.core_copy_rate_mbps
            * self.thread_efficiency(np_, host)
        )
