"""Transfer specifications and byte accounting.

The paper's experiments transfer from ``/dev/zero`` to ``/dev/null`` — an
unbounded source — for a fixed wall-clock duration; Algorithms 1-3 are
written for a finite size ``s`` with remaining-bytes bookkeeping ``s'``.
:class:`TransferSpec` supports both: give ``total_bytes=math.inf`` with a
``max_duration_s``, or a finite size (or both; whichever ends first).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class TransferSpec:
    """Immutable description of one transfer job.

    Parameters
    ----------
    name:
        Unique session identifier, e.g. ``"anl-uc"``.
    path_name:
        Route in the topology the streams will follow.
    total_bytes:
        Data size ``s``; ``math.inf`` emulates /dev/zero sources.
    max_duration_s:
        Wall-clock limit; ``None`` for unlimited (finite sizes only).
    epoch_s:
        Control epoch length ``e`` (paper: 30 s).
    epoch_offset_s:
        Phase offset of the first epoch boundary.  The first control
        epoch lasts ``epoch_s + epoch_offset_s``; all later ones
        ``epoch_s``.  Desynchronizes the control loops of concurrent
        sessions — the "temporal ordering of control epochs" the paper's
        §IV-D speculates about.
    """

    name: str
    path_name: str
    total_bytes: float = math.inf
    max_duration_s: float | None = None
    epoch_s: float = 30.0
    epoch_offset_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("transfer name must be non-empty")
        if not self.path_name:
            raise ValueError("path_name must be non-empty")
        if self.total_bytes <= 0:
            raise ValueError("total_bytes must be positive")
        if math.isinf(self.total_bytes) and self.max_duration_s is None:
            raise ValueError(
                "an unbounded transfer needs a max_duration_s limit"
            )
        if self.max_duration_s is not None and self.max_duration_s <= 0:
            raise ValueError("max_duration_s must be positive")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if not 0 <= self.epoch_offset_s < self.epoch_s:
            raise ValueError("epoch_offset_s must be in [0, epoch_s)")


@dataclass
class TransferState:
    """Mutable progress of one transfer (the ``s'`` of the algorithms)."""

    spec: TransferSpec
    remaining_bytes: float = math.nan  # set in __post_init__
    elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        if math.isnan(self.remaining_bytes):
            self.remaining_bytes = self.spec.total_bytes

    @property
    def done(self) -> bool:
        """True once all bytes moved or the wall-clock limit is reached."""
        if self.remaining_bytes <= 0:
            return True
        limit = self.spec.max_duration_s
        return limit is not None and self.elapsed_s >= limit

    def account(self, nbytes: float, dt: float) -> float:
        """Consume up to ``nbytes`` over a ``dt``-second step.

        Returns the bytes actually moved (clipped to what remains).
        """
        if nbytes < 0 or dt <= 0:
            raise ValueError("need nbytes >= 0 and dt > 0")
        moved = min(nbytes, self.remaining_bytes)
        self.remaining_bytes -= moved
        self.elapsed_s += dt
        return moved

    # -- checkpoint support ----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready progress state (``inf`` survives the round trip —
        Python's ``json`` writes/reads it as ``Infinity``)."""
        return {
            "remaining_bytes": self.remaining_bytes,
            "elapsed_s": self.elapsed_s,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot` (the spec is immutable and
        travels with the run configuration instead)."""
        self.remaining_bytes = float(state["remaining_bytes"])
        self.elapsed_s = float(state["elapsed_s"])
