"""Shared stochastic helpers (dependency-free leaf module)."""

from __future__ import annotations

import numpy as np


def lognormal_factor(rng: np.random.Generator, sigma: float) -> float:
    """Draw a mean-one multiplicative lognormal noise factor.

    The underlying normal has mean ``-sigma**2 / 2`` so that
    ``E[factor] == 1`` for any ``sigma``; ``sigma == 0`` returns exactly 1.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    if sigma == 0.0:
        return 1.0
    return float(np.exp(rng.normal(-0.5 * sigma * sigma, sigma)))
