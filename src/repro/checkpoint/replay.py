"""Tuner-state reconstruction by observation replay.

Tuners are opaque generators (:class:`repro.core.base.TunerDriver`):
their search state cannot be pickled portably, and must not be — a
checkpoint format tied to generator internals would break on any
refactor.  Instead, resume *replays* the journaled epochs through a
fresh driver: the tuner receives exactly the observations it received
in the original run (and only those — faulted, obs-lost, and
breaker-fallback epochs are withheld, per the fault-aware tuning
invariant), so its generator ends up in the bit-identical state, RNG
and all (seeded tuners draw inside ``propose``, so a fresh ``start``
replays their internal randomness too).

The replay drives fresh :class:`~repro.faults.RetryPolicy` counters and
a :class:`~repro.faults.CircuitBreaker` through the same per-epoch
dispatch order as :meth:`repro.sim.engine.Engine._dispatch_epoch` and
:func:`repro.live.tune_live`, and *verifies* every journaled epoch
against the recomputed trajectory — params, governing breaker state,
cumulative retries, and the tuned flag must all match, else
:class:`ReplayMismatchError` pinpoints the first divergent epoch.  A
journal that passes replay is guaranteed to put the resumed run in the
exact state the crashed run was in at its last complete epoch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import Tuner, TunerDriver
from repro.core.params import ParamSpace
from repro.faults.breaker import CLOSED, OPEN, CircuitBreaker
from repro.faults.events import OBS_LOSS, SESSION_ABORT
from repro.faults.retry import RetryPolicy, RetryState
from repro.sim.trace import EpochRecord


class ReplayMismatchError(RuntimeError):
    """The journal disagrees with the replayed trajectory.

    Raised before any resumed run continues: either the journal belongs
    to a different configuration (tuner, seed, space, fault machinery)
    or it was tampered with/damaged in a way the framing checks cannot
    see.
    """

    def __init__(self, epoch: int, field: str, expected, got) -> None:
        self.epoch = epoch
        self.field = field
        super().__init__(
            f"replay mismatch at epoch {epoch}: {field} expected "
            f"{expected!r}, journal has {got!r} — the journal does not "
            "match this run configuration"
        )


@dataclass
class ReplayResult:
    """Reconstructed control-loop state after replaying a journal prefix.

    ``driver.current`` is the tuner's standing proposal and ``params``
    the parameters the *next* epoch must run with (they differ while
    faults hold the session at its previous parameters or the breaker
    pins it at the fallback).
    """

    driver: TunerDriver
    params: tuple[int, ...]
    retry_state: RetryState | None
    breaker: CircuitBreaker | None
    failed: bool
    epochs_replayed: int


def _fallback(
    space: ParamSpace,
    params: tuple[int, ...],
    breaker: CircuitBreaker,
    nc_dim: int | None,
    np_dim: int | None,
) -> tuple[int, ...]:
    p = list(params)
    if nc_dim is not None:
        p[nc_dim] = breaker.fallback_nc
    if np_dim is not None:
        p[np_dim] = breaker.fallback_np
    return space.fbnd(tuple(p))


def replay_epochs(
    tuner: Tuner,
    space: ParamSpace,
    x0: tuple[int, ...],
    records: list[EpochRecord],
    *,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    nc_dim: int | None = 0,
    np_dim: int | None = None,
    verify: bool = True,
) -> ReplayResult:
    """Rebuild driver/retry/breaker state from journaled epoch records.

    ``breaker`` is reset and driven through the replay (pass the
    session's own instance so resume leaves it holding the right
    state).  With ``verify`` (the default) every record is checked
    against the recomputed trajectory; disable only in tests probing
    the mechanics.
    """
    driver = tuner.start(x0, space)
    retry_state = retry_policy.start() if retry_policy is not None else None
    if breaker is not None:
        breaker.reset()
    params = driver.current
    failed = False

    for i, rec in enumerate(records):
        governing = breaker.state if breaker is not None else CLOSED
        tuned = rec.fault is None and governing != OPEN
        if verify:
            if tuple(rec.params) != tuple(params):
                raise ReplayMismatchError(i, "params", tuple(params),
                                          tuple(rec.params))
            if rec.breaker != governing:
                raise ReplayMismatchError(i, "breaker", governing,
                                          rec.breaker)
            expected_retries = (retry_state.total_retries
                                if retry_state is not None else 0)
            if rec.retries != expected_retries:
                raise ReplayMismatchError(i, "retries", expected_retries,
                                          rec.retries)
            if rec.tuned != tuned:
                raise ReplayMismatchError(i, "tuned", tuned, rec.tuned)
        if failed:
            raise ReplayMismatchError(
                i, "failed", "no epochs after a session abort ended the "
                "run", "extra epoch record")

        # Identical dispatch order to Engine._dispatch_epoch / tune_live.
        if retry_state is not None:
            retry_state.next_epoch()
        prev_state = breaker.state if breaker is not None else None
        if breaker is not None:
            breaker.record_epoch(rec.faulted)

        if (rec.fault == SESSION_ABORT and retry_state is not None
                and not retry_state.can_retry()):
            failed = True
            continue

        if breaker is not None and breaker.state == OPEN:
            params = _fallback(space, params, breaker, nc_dim, np_dim)
        elif breaker is not None and prev_state == OPEN:
            params = driver.current  # probe with the standing proposal
        elif rec.faulted:
            if retry_state is not None and retry_state.can_retry():
                # The jitter draw only shapes the backoff *delay*; the
                # counters the resumed run needs are u-independent.
                retry_state.record_failure(u=0.0)
            # parameters held for the relaunch
        elif rec.fault == OBS_LOSS:
            if retry_state is not None:
                retry_state.record_success()
            # parameters held; the tuner observes nothing
        else:
            if retry_state is not None:
                retry_state.record_success()
            params = driver.observe(rec.observed)

    return ReplayResult(
        driver=driver,
        params=tuple(params),
        retry_state=retry_state,
        breaker=breaker,
        failed=failed,
        epochs_replayed=len(records),
    )
