"""Crash-safe checkpoint/resume for tuned transfers.

Every control epoch is appended to an fsynced JSONL *journal* together
with a state snapshot (RNG streams, sim clock, per-session transfer /
retry / breaker state).  Tuners are opaque generators and cannot be
pickled, so resume reconstructs tuner state by *replaying* the
journaled ``(params, observed, faulted)`` observations through a fresh
driver — verifying at every epoch that the replayed proposals match
what the journal recorded.  A resumed simulation run is bit-identical
to the same run uninterrupted; a resumed live run continues the search
from the last completed epoch instead of the Globus default.

Entry points: :func:`run_journaled` / :func:`resume_run` for the
single-transfer flow (CLI ``repro run --journal`` / ``repro resume``),
:func:`warm_start_x0` to seed a new session from the best journaled
configuration, and the lower-level :class:`JournalWriter` /
:func:`read_journal` / :func:`replay_epochs` / :func:`resume_engine`
for embedding.
"""

from repro.checkpoint.journal import (
    JOURNAL_FORMAT,
    Journal,
    JournalEpoch,
    JournalWriter,
    read_journal,
    trim_to_last_snapshot,
)
from repro.checkpoint.replay import (
    ReplayMismatchError,
    ReplayResult,
    replay_epochs,
)
from repro.checkpoint.resume import (
    resume_engine,
    resume_live_state,
    resume_run,
    run_journaled,
    trace_from_journal,
    warm_start_x0,
)

__all__ = [
    "JOURNAL_FORMAT",
    "Journal",
    "JournalEpoch",
    "JournalWriter",
    "ReplayMismatchError",
    "ReplayResult",
    "read_journal",
    "replay_epochs",
    "resume_engine",
    "resume_live_state",
    "resume_run",
    "run_journaled",
    "trace_from_journal",
    "trim_to_last_snapshot",
    "warm_start_x0",
]
