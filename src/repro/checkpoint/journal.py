"""Crash-safe epoch journal: append-only JSONL with atomic framing.

The journal is the durable backbone of checkpoint/resume: both the sim
:class:`~repro.sim.engine.Engine` and the live loop
(:func:`repro.live.tune_live`) append one record per closed control
epoch, plus a state snapshot after each epoch-dispatch round, so a
killed process loses at most the epoch it was inside.

Framing and durability
----------------------
Each record is one JSON object on one ``\\n``-terminated line, written
with a single ``write`` call, flushed, and ``fsync``\\ ed before the
writer returns — a record either reaches the disk whole or not at all
from the reader's point of view.  The reader treats a missing trailing
newline (or an unparseable final line) as a *torn record* from a crash
mid-append: it is dropped with a warning and the journal resumes from
the last complete record.  Damage anywhere *before* the final record is
not a crash artifact and raises
:class:`~repro.sim.traceio.CorruptTraceError` with the file and byte
offset.

Record kinds
------------
``header``
    Run configuration (written once, first): everything needed to
    rebuild the engine/loop for resume, plus ``format`` (this module's
    :data:`JOURNAL_FORMAT`).
``epoch``
    One closed control epoch of one session: the trace-v1 epoch fields
    (params, observed, best_case, faulted/fault/retries/breaker/tuned)
    and, for sim runs, the epoch's per-step records.
``snapshot``
    Mutable run state at a consistent point (after all of a step's
    epoch dispatches): RNG stream states, sim clock, per-session
    runtime (restart window, ramp clock, partial-epoch accumulators),
    retry counters and breaker state.  Resume restores the *last*
    snapshot; tuner state is never snapshotted — it is reconstructed by
    replaying the journaled epochs (see :mod:`repro.checkpoint.replay`).
``section``
    A completed campaign unit (used by ``repro campaign --journal``).
``end``
    The run finished; a resume of an ended journal is a no-op.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.sim.trace import EpochRecord, StepRecord
from repro.sim.traceio import (
    CorruptTraceError,
    epoch_from_dict,
    epoch_to_dict,
    step_from_dict,
    step_to_dict,
)

#: Journal format tag, written into the header record.
JOURNAL_FORMAT = 1

HEADER = "header"
EPOCH = "epoch"
SNAPSHOT = "snapshot"
SECTION = "section"
END = "end"


class JournalWriter:
    """Append-only JSONL journal writer with per-record fsync.

    Opened in append mode, so resuming a run keeps extending the same
    file and the concatenated epoch stream stays contiguous.  Use as a
    context manager or call :meth:`close`.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        _drop_torn_tail(self.path)
        self._f = open(self.path, "a", encoding="utf-8")
        #: Optional ``(kind)`` callback fired after each durable append —
        #: telemetry only (set by the observability wiring, never here).
        self.on_record: "Callable[[str], None] | None" = None

    # -- low-level -------------------------------------------------------

    def write(self, record: dict) -> None:
        """Append one record: single write, flush, fsync."""
        if "kind" not in record:
            raise ValueError("journal records need a 'kind' field")
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self._f.write(line)
        self._f.flush()
        os.fsync(self._f.fileno())
        if self.on_record is not None:
            self.on_record(record["kind"])

    # -- record helpers --------------------------------------------------

    def write_header(self, config: dict) -> None:
        self.write({"kind": HEADER, "format": JOURNAL_FORMAT, **config})

    def write_epoch(
        self,
        session: str,
        rec: EpochRecord,
        steps: list[StepRecord] | None = None,
    ) -> None:
        record = {"kind": EPOCH, "session": session,
                  "epoch": epoch_to_dict(rec)}
        if steps is not None:
            record["steps"] = [step_to_dict(s) for s in steps]
        self.write(record)

    def write_snapshot(self, state: dict) -> None:
        self.write({"kind": SNAPSHOT, "state": state})

    def write_section(self, name: str, payload: dict) -> None:
        self.write({"kind": SECTION, "name": name, **payload})

    def write_end(self) -> None:
        self.write({"kind": END})

    def close(self) -> None:
        if not self._f.closed:
            self._f.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class JournalEpoch:
    """One journaled control epoch of one session."""

    session: str
    record: EpochRecord
    steps: tuple[StepRecord, ...] = ()


@dataclass
class Journal:
    """Parsed journal contents.

    ``epochs`` holds every complete epoch record in file order;
    ``snapshot`` is the *last* complete state snapshot and
    ``snapshot_epochs`` the epochs written before it (the ones the
    snapshot's state accounts for — later epochs, if any, were closed
    after the last snapshot survived and are ignored by resume).
    """

    path: str = ""
    header: dict | None = None
    epochs: list[JournalEpoch] = field(default_factory=list)
    snapshot: dict | None = None
    sections: dict[str, dict] = field(default_factory=dict)
    ended: bool = False
    truncated: bool = False
    _snapshot_mark: int = 0

    @property
    def snapshot_epochs(self) -> list[JournalEpoch]:
        """Epochs covered by the last snapshot (resume's replay input)."""
        return self.epochs[: self._snapshot_mark]

    def epochs_for(self, session: str) -> list[JournalEpoch]:
        return [e for e in self.epochs if e.session == session]

    def snapshot_epochs_for(self, session: str) -> list[JournalEpoch]:
        return [e for e in self.snapshot_epochs if e.session == session]

    def sessions(self) -> list[str]:
        seen: dict[str, None] = {}
        for e in self.epochs:
            seen.setdefault(e.session, None)
        return list(seen)

    def best_params(self, session: str | None = None) -> tuple[int, ...] | None:
        """Parameters of the best *clean, tuner-observed* journaled epoch
        (the warm-start seed), or None if no such epoch exists."""
        candidates = [
            e.record
            for e in self.epochs
            if (session is None or e.session == session) and e.record.tuned
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.observed).params


def _drop_torn_tail(path: Path) -> None:
    """Truncate an unterminated final line (a crash mid-append).

    Appending after a torn record would concatenate the next record onto
    the partial line and turn a recoverable crash artifact into mid-file
    corruption, so the writer trims it before its first append.
    """
    try:
        size = path.stat().st_size
    except FileNotFoundError:
        return
    if size == 0:
        return
    raw = path.read_bytes()
    if raw.endswith(b"\n"):
        return
    keep = raw.rfind(b"\n") + 1
    with open(path, "r+b") as f:
        f.truncate(keep)


def trim_to_last_snapshot(path: str | Path) -> int:
    """Truncate a run journal to its last complete snapshot record.

    Epochs closed after the last surviving snapshot are not accounted
    for by the snapshot's state: resume re-runs them, and leaving their
    records in place would make the journal's epoch stream contain
    superseded duplicates.  Called by resume before it reopens the
    writer.  A journal with no snapshot keeps only its header (resume
    runs from scratch).  Returns the number of bytes dropped.
    """
    path = Path(path)
    raw = path.read_bytes()
    keep = offset = 0
    for line in raw.splitlines(keepends=True):
        if not line.endswith(b"\n"):
            break  # torn tail; dropped along with the dead records
        offset += len(line)
        try:
            kind = json.loads(line).get("kind")
        except ValueError:
            break  # unreadable tail record: nothing past it survives
        if kind in (HEADER, SNAPSHOT):
            keep = offset
    if keep < len(raw):
        with open(path, "r+b") as f:
            f.truncate(keep)
    return len(raw) - keep


def read_journal(path: str | Path) -> Journal:
    """Parse a journal, tolerating a torn final record.

    A final line that is unterminated or fails to parse is dropped with
    a :class:`UserWarning` (the crash cost one record); a bad line
    anywhere else raises :class:`~repro.sim.traceio.CorruptTraceError`
    with the byte offset of the offending line.
    """
    path = Path(path)
    raw = path.read_bytes()
    journal = Journal(path=str(path))
    offset = 0
    lines: list[tuple[int, bytes]] = []
    for line in raw.split(b"\n"):
        lines.append((offset, line))
        offset += len(line) + 1
    # A well-formed journal ends with "\n", leaving one empty tail field.
    if lines and lines[-1][1] == b"":
        lines.pop()
    else:
        journal.truncated = True  # unterminated tail below

    n = len(lines)
    for i, (off, line) in enumerate(lines):
        last = i == n - 1
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError("not a journal record")
        except (ValueError, UnicodeDecodeError) as exc:
            if last:
                journal.truncated = True
                warnings.warn(
                    f"journal {path}: dropping torn final record at byte "
                    f"offset {off} ({exc}); resuming from the last "
                    "complete epoch",
                    stacklevel=2,
                )
                break
            raise CorruptTraceError(path, off, str(exc)) from exc
        if last and journal.truncated:
            # The file did not end in a newline, so even a line that
            # happens to parse cannot be trusted to be complete.
            warnings.warn(
                f"journal {path}: dropping unterminated final record at "
                f"byte offset {off}; resuming from the last complete "
                "epoch",
                stacklevel=2,
            )
            break
        _absorb(journal, record, path, off)
    return journal


def _absorb(journal: Journal, record: dict, path: Path, off: int) -> None:
    kind = record["kind"]
    if kind == HEADER:
        fmt = record.get("format")
        if fmt != JOURNAL_FORMAT:
            raise CorruptTraceError(
                path, off,
                f"unsupported journal format {fmt!r} "
                f"(expected {JOURNAL_FORMAT})",
            )
        journal.header = {
            k: v for k, v in record.items() if k not in ("kind",)
        }
    elif kind == EPOCH:
        journal.epochs.append(
            JournalEpoch(
                session=str(record["session"]),
                record=epoch_from_dict(record["epoch"]),
                steps=tuple(
                    step_from_dict(s) for s in record.get("steps", [])
                ),
            )
        )
    elif kind == SNAPSHOT:
        journal.snapshot = record["state"]
        journal._snapshot_mark = len(journal.epochs)
    elif kind == SECTION:
        journal.sections[str(record["name"])] = {
            k: v for k, v in record.items() if k not in ("kind", "name")
        }
    elif kind == END:
        journal.ended = True
    # Unknown kinds are skipped: newer writers stay readable.
