"""Crash-safe runs and deterministic resume.

High-level glue over :mod:`repro.checkpoint.journal` and
:mod:`repro.checkpoint.replay`:

* :func:`run_journaled` — run one tuned transfer with every epoch (and a
  state snapshot) fsynced to a journal whose header records the full run
  configuration by *name* (scenario, tuner, seed, load, fault campaign),
  so nothing but the journal is needed to resume.
* :func:`resume_run` — rebuild the engine from the header, reconstruct
  the tuner by replaying the journaled observations (verified record by
  record), restore the RNG streams / sim clock / retry / breaker /
  transfer state from the last snapshot, and continue.  The resumed
  run's trace is **bit-identical** to the same run uninterrupted.
* :func:`warm_start_x0` — the best journaled configuration, for seeding
  a *new* session's search (Arslan & Kosar-style historical warm start)
  instead of re-climbing from the Globus default.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.checkpoint.journal import (
    Journal,
    JournalWriter,
    read_journal,
    trim_to_last_snapshot,
)
from repro.checkpoint.replay import ReplayMismatchError, replay_epochs
from repro.core.registry import make_tuner
from repro.endpoint.load import ExternalLoad
from repro.experiments.runner import EPOCH_S, make_session
from repro.experiments.scenarios import SCENARIOS
from repro.faults import CircuitBreaker, FaultSchedule, RetryPolicy
from repro.sim.engine import Engine, EngineConfig
from repro.sim.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instrument import Instrumentation


def warm_start_x0(
    journal: str | Path | Journal, session: str | None = None
) -> tuple[int, ...] | None:
    """Best clean, tuner-observed configuration in a journal, or None.

    The warm-start seed for a new run: start the search where the last
    session's climb ended instead of at the Globus default.
    """
    if not isinstance(journal, Journal):
        journal = read_journal(journal)
    return journal.best_params(session)


def trace_from_journal(
    journal: str | Path | Journal, session: str | None = None
) -> Trace:
    """Reconstruct a session's trace from its journaled epochs/steps."""
    if not isinstance(journal, Journal):
        journal = read_journal(journal)
    sessions = journal.sessions()
    if session is None:
        if len(sessions) != 1:
            raise ValueError(
                f"journal holds sessions {sessions}; pick one"
            )
        session = sessions[0]
    trace = Trace(label=session)
    for je in journal.epochs_for(session):
        for s in je.steps:
            trace.add_step(s)
        trace.add_epoch(je.record)
    return trace


def resume_engine(engine: Engine, journal: Journal) -> bool:
    """Prepare a freshly built engine to continue a journaled run.

    For every session: replay the journaled epochs through a fresh
    driver (verifying each record against the recomputed trajectory),
    install the replayed driver, then restore the last snapshot — and
    cross-check that the replayed params/retry/breaker state agree with
    the snapshotted state, so a configuration mismatch can never resume
    silently wrong.  Returns False when the journal holds no snapshot
    yet (nothing to restore; the engine runs from scratch).
    """
    if journal.snapshot is None:
        return False
    replays = {}
    for s in engine.sessions:
        if s.driver is None or s.tuner is None:
            raise ValueError(
                f"session {s.name!r} has no tuner; journaled runs need "
                "independently tuned sessions"
            )
        recs = [je.record for je in journal.snapshot_epochs_for(s.name)]
        result = replay_epochs(
            s.tuner, s.space, s.x0, recs,
            retry_policy=s.retry_policy,
            breaker=s.breaker,
            nc_dim=s.param_map.nc_dim,
            np_dim=s.param_map.np_dim,
        )
        replayed_breaker = (
            s.breaker.snapshot() if s.breaker is not None else None
        )
        replayed_retry = (
            result.retry_state.snapshot()
            if result.retry_state is not None else None
        )
        s.driver = result.driver
        if s.retry_state is not None and result.retry_state is not None:
            s.retry_state = result.retry_state
        replays[s.name] = (result, replayed_retry, replayed_breaker, recs)

    epochs_by_session = {
        name: [
            (je.record, list(je.steps))
            for je in journal.snapshot_epochs_for(name)
        ]
        for name in journal.sessions()
    }
    engine.restore_snapshot(journal.snapshot, epochs_by_session)

    # Cross-check replay against the snapshot: both derive the same
    # dispatch state through independent routes.
    for s in engine.sessions:
        result, replayed_retry, replayed_breaker, recs = replays[s.name]
        n = len(recs)
        if tuple(result.params) != s.params:
            raise ReplayMismatchError(n, "params", tuple(result.params),
                                      s.params)
        if result.failed != s.failed:
            raise ReplayMismatchError(n, "failed", result.failed, s.failed)
        if s.retry_state is not None:
            snap = journal.snapshot["sessions"][s.name]["retry"]
            if replayed_retry != snap:
                raise ReplayMismatchError(n, "retry", replayed_retry, snap)
        if s.breaker is not None:
            snap = journal.snapshot["sessions"][s.name]["breaker"]
            if replayed_breaker != snap:
                raise ReplayMismatchError(n, "breaker", replayed_breaker,
                                          snap)
    return True


def resume_live_state(
    journal: str | Path | Journal,
    tuner,
    space,
    x0: tuple[int, ...],
    *,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    nc_dim: int = 0,
    np_dim: int | None = None,
    session: str = "live",
):
    """Reconstruct :func:`repro.live.tune_live` loop state from a journal.

    Replays the journaled epochs through a fresh driver (verified record
    by record — pass the same tuner/space/x0/policy/breaker the original
    run used; the breaker instance is left holding its resumed state)
    and combines the result with the last live snapshot's wall-clock and
    byte ledgers.  Hand the returned :class:`repro.live.LiveResumeState`
    to ``tune_live(..., resume=state)`` together with the same
    ``breaker`` and a :class:`JournalWriter` reopened on the same path.
    """
    from repro.live import LiveEpoch, LiveResumeState

    if not isinstance(journal, Journal):
        path = journal
        journal = read_journal(path)
        if not journal.ended:
            trim_to_last_snapshot(path)
    if journal.snapshot is None or "live" not in journal.snapshot:
        raise ValueError(
            "journal holds no live snapshot; it was not written by "
            "tune_live(journal=...)"
        )
    live = journal.snapshot["live"]
    epochs = journal.snapshot_epochs_for(session)
    recs = [je.record for je in epochs]
    result = replay_epochs(
        tuner, space, x0, recs,
        retry_policy=retry_policy, breaker=breaker,
        nc_dim=nc_dim, np_dim=np_dim,
    )
    if int(live["index"]) != len(recs):
        raise ReplayMismatchError(
            len(recs), "index", len(recs), int(live["index"])
        )
    return LiveResumeState(
        epochs=[LiveEpoch.from_record(r) for r in recs],
        driver=result.driver,
        params=result.params,
        retry_state=result.retry_state,
        index=int(live["index"]),
        elapsed=float(live["elapsed"]),
        moved_bytes=float(live["moved_bytes"]),
        failed=bool(live["failed"]) or result.failed,
    )


# -- turnkey single-transfer flow (CLI `run --journal` / `resume`) ---------


def _run_config(
    *,
    scenario: str,
    tuner: str,
    seed: int,
    load: str,
    duration_s: float,
    epoch_s: float,
    tune_np: bool,
    fixed_np: int,
    max_nc: int,
    x0: tuple[int, ...] | None,
    fault_schedule: FaultSchedule | None,
    retry_policy: RetryPolicy | None,
    breaker: CircuitBreaker | None,
) -> dict:
    return {
        "scenario": scenario,
        "tuner": tuner,
        "seed": seed,
        "load": load,
        "duration_s": duration_s,
        "epoch_s": epoch_s,
        "tune_np": tune_np,
        "fixed_np": fixed_np,
        "max_nc": max_nc,
        "x0": None if x0 is None else list(x0),
        "fault_schedule": (None if fault_schedule is None
                           else fault_schedule.to_list()),
        "retry_policy": (None if retry_policy is None
                         else retry_policy.to_dict()),
        "breaker": None if breaker is None else breaker.to_dict(),
    }


def _build_engine(
    config: dict,
    journal: JournalWriter | None,
    obs: "Instrumentation | None" = None,
) -> Engine:
    try:
        scenario = SCENARIOS[config["scenario"]]
    except KeyError:
        raise ValueError(
            f"journal references unknown scenario {config['scenario']!r}; "
            f"known: {sorted(SCENARIOS)}"
        ) from None
    tuner = make_tuner(config["tuner"], int(config["seed"]))
    ExternalLoad.parse(config["load"])  # validate early
    fault_schedule = (
        FaultSchedule.from_list(config["fault_schedule"])
        if config.get("fault_schedule") is not None else None
    )
    retry_policy = (
        RetryPolicy.from_dict(config["retry_policy"])
        if config.get("retry_policy") is not None else None
    )
    breaker = (
        CircuitBreaker.from_dict(config["breaker"])
        if config.get("breaker") is not None else None
    )
    session = make_session(
        "main",
        scenario.main_path,
        tuner,
        duration_s=float(config["duration_s"]),
        epoch_s=float(config["epoch_s"]),
        tune_np=bool(config["tune_np"]),
        fixed_np=int(config["fixed_np"]),
        max_nc=int(config["max_nc"]),
        x0=(None if config["x0"] is None
            else tuple(int(v) for v in config["x0"])),
        fault_schedule=fault_schedule,
        retry_policy=retry_policy,
        breaker=breaker,
    )
    from repro.endpoint.load import LoadSchedule

    return Engine(
        topology=scenario.build_topology(),
        host=scenario.host,
        sessions=[session],
        schedule=LoadSchedule.constant(ExternalLoad.parse(config["load"])),
        config=EngineConfig(seed=int(config["seed"])),
        journal=journal,
        obs=obs,
    )


def run_journaled(
    journal_path: str | Path,
    *,
    scenario: str = "anl-uc",
    tuner: str = "nm",
    seed: int = 0,
    load: str = "none",
    duration_s: float = 1800.0,
    epoch_s: float = EPOCH_S,
    tune_np: bool = False,
    fixed_np: int = 8,
    max_nc: int = 512,
    x0: tuple[int, ...] | None = None,
    fault_schedule: FaultSchedule | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    warm_start_from: str | Path | None = None,
    obs: "Instrumentation | None" = None,
) -> Trace:
    """One crash-safe tuned transfer: journal header + epochs + snapshots.

    ``warm_start_from`` seeds the tuner's ``x0`` from the best
    configuration in an *earlier* journal.  Refuses to overwrite an
    existing journal — that is what :func:`resume_run` is for.
    """
    journal_path = Path(journal_path)
    if journal_path.exists() and journal_path.stat().st_size > 0:
        raise FileExistsError(
            f"journal {journal_path} already exists; use resume_run() "
            "(CLI: `repro resume`) to continue it"
        )
    if warm_start_from is not None:
        warm = warm_start_x0(warm_start_from)
        if warm is not None:
            x0 = warm if not tune_np or len(warm) == 2 else x0
    config = _run_config(
        scenario=scenario, tuner=tuner, seed=seed, load=load,
        duration_s=duration_s, epoch_s=epoch_s, tune_np=tune_np,
        fixed_np=fixed_np, max_nc=max_nc, x0=x0,
        fault_schedule=fault_schedule, retry_policy=retry_policy,
        breaker=breaker,
    )
    with JournalWriter(journal_path) as writer:
        writer.write_header({"run": config})
        engine = _build_engine(config, writer, obs=obs)
        return engine.run()["main"]


def resume_run(
    journal_path: str | Path,
    obs: "Instrumentation | None" = None,
) -> Trace:
    """Continue a killed :func:`run_journaled` from its last complete
    epoch; the returned trace is bit-identical to the uninterrupted run.

    An already-finished journal is a no-op: the complete trace is
    reconstructed from the journal and returned.
    """
    journal = read_journal(journal_path)
    if journal.header is None or "run" not in journal.header:
        raise ValueError(
            f"journal {journal_path} has no run header; it was not "
            "written by run_journaled()/`repro run --journal`"
        )
    if journal.ended:
        return trace_from_journal(journal)
    # Drop records past the resume anchor (epochs whose snapshot never
    # made it to disk are re-run, not replayed) so the journal's epoch
    # stream stays free of superseded duplicates.
    trim_to_last_snapshot(journal_path)
    with JournalWriter(journal_path) as writer:
        engine = _build_engine(journal.header["run"], writer, obs=obs)
        resume_engine(engine, journal)
        return engine.run()["main"]
