"""Seeded random-number streams.

Each stochastic subsystem (throughput noise, restart jitter, fault
injection, ...) draws from its own child generator spawned from a single
root seed.  This keeps experiments reproducible *and* decoupled: adding a
draw in one subsystem does not perturb the sequence seen by another.
"""

from __future__ import annotations

import numpy as np

from repro.noise import lognormal_factor  # noqa: F401  (re-export)

#: Named streams spawned for every run, in a fixed order.
STREAM_NAMES = (
    "throughput_noise",
    "restart_jitter",
    "faults",
    "tuner",
    "workload",
    "misc",
)


class RngStreams:
    """A fixed family of independent, named ``numpy`` generators.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RngStreams` built from the same seed produce
        identical draws in every stream.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        root = np.random.SeedSequence(self.seed)
        children = root.spawn(len(STREAM_NAMES))
        self._children = dict(zip(STREAM_NAMES, children))
        # Generators are built lazily: spawning SeedSequence children is
        # cheap, but constructing a Generator is not, and most runs touch
        # only a few streams (batched campaigns build thousands of
        # RngStreams).  Laziness does not affect draw sequences — each
        # stream's child seed is fixed above, at spawn time.
        self._streams: dict[str, np.random.Generator] = {}

    def _get(self, name: str) -> np.random.Generator:
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._children[name])
            self._streams[name] = gen
        return gen

    def __getattr__(self, name: str) -> np.random.Generator:
        try:
            return self._get(name)
        except KeyError:
            raise AttributeError(
                f"no RNG stream named {name!r}; available: {STREAM_NAMES}"
            ) from None

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (must be in STREAM_NAMES)."""
        if name not in self._children:
            raise KeyError(
                f"no RNG stream named {name!r}; available: {STREAM_NAMES}"
            )
        return self._get(name)

    # -- checkpoint support ----------------------------------------------

    def get_state(self) -> dict:
        """JSON-ready state of every stream (exact, bit-preserving).

        The bit-generator state dicts hold plain Python ints (arbitrary
        precision), so a JSON round-trip restores the streams exactly.
        """
        return {
            name: self._get(name).bit_generator.state
            for name in STREAM_NAMES
        }

    def set_state(self, state: dict) -> None:
        """Restore the streams captured by :meth:`get_state`.

        Every known stream must be present; restoring an incomplete
        snapshot would silently desynchronize a subsystem.
        """
        missing = [n for n in STREAM_NAMES if n not in state]
        if missing:
            raise KeyError(f"rng snapshot is missing streams: {missing}")
        for name in STREAM_NAMES:
            self._get(name).bit_generator.state = state[name]
