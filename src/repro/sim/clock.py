"""Discrete simulation clock.

The fluid model advances in fixed steps of ``dt`` seconds.  Using an integer
tick counter (rather than accumulating floats) keeps epoch boundaries exact:
``now == tick * dt`` with no drift over long runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimClock:
    """Fixed-step simulation clock.

    Parameters
    ----------
    dt:
        Step length in seconds.  Must be positive.
    """

    dt: float = 1.0
    tick: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self.tick * self.dt

    def advance(self, nticks: int = 1) -> float:
        """Advance the clock by ``nticks`` steps and return the new time."""
        if nticks < 0:
            raise ValueError("cannot advance the clock backwards")
        self.tick += nticks
        return self.now

    def ticks_for(self, seconds: float) -> int:
        """Number of whole ticks spanning ``seconds`` (rounded to nearest).

        Raises if ``seconds`` is not an integral multiple of ``dt`` to within
        floating-point tolerance; epoch lengths must align with the step size
        so that epoch averages cover whole steps.
        """
        ratio = seconds / self.dt
        n = round(ratio)
        if abs(ratio - n) > 1e-9:
            raise ValueError(
                f"{seconds} s is not a multiple of dt={self.dt} s"
            )
        return n
