"""Shared-substrate span engine: one shard's tenant lanes in lockstep.

:class:`ShardSpanEngine` advances a *multi-session* scalar
:class:`~repro.sim.engine.Engine` — a fleet shard's shared substrate —
by whole control-epoch windows, vectorizing the per-step arithmetic
across the session axis ("lanes") while staying bit-identical (epochs
AND steps) to the same engine driven through ``step_once``.

This is the fleet-shard sibling of :class:`~repro.sim.batch.engine.
BatchEngine`, with one structural difference: BatchEngine's lanes are
independent engines with independent RNG streams, whereas a shard's
lanes are *coupled* — they contend in one max-min allocation and share
one ``throughput_noise`` stream.  Coupling changes the span rules:

* a span breaks wherever the allocation can change, which now includes
  any lane's restart window crossing the one-step threshold (a lane
  going dead/live changes every *other* lane's rate, not just its
  own), on top of the epoch-close / duration-done / load-change breaks
  BatchEngine predicts.  Within a span the allocation is constant and
  is computed once with the engine's own ``_allocation_phase``;
* the scalar loop draws step jitter *step-major* (each step, every
  live-and-allocated session in session order) from the one shared
  stream.  One sized ``normal(size=k*m)`` reshaped ``(k, m)`` and
  transposed reproduces that exact interleave, because numpy's sized
  draws produce the identical value sequence as n scalar calls;
* window ends close epochs with the sessions' own ``close_epoch`` and
  dispatch through the engine's own ``_dispatch_epoch``, in session
  order, with the per-dispatch noise/restart-jitter factors pre-drawn
  as one sized call per stream (same sequence, same end state).
  Closing every epoch before dispatching any is draw-neutral: closes
  consume no RNG and touch only their own session.

The arithmetic inside a span is BatchEngine's operand-for-operand
(``math.exp`` per element for the ramp, ``np.add.accumulate`` left
folds for the epoch accumulators, memoized sequential float folds for
the dt-paced counters), so the scalar engine remains the single
bit-exactness reference for both batch paths.

Membership (attach/reap) happens *between* windows in the fleet's pump
loop, and anything the span solver cannot express — an **active**
fault schedule, retry/breaker state, finite bytes — routes the whole
window to the scalar loop at the shard layer (see
:func:`~repro.sim.batch.eligibility.unbatchable_lane_reason`); once the
blocker passes, the next window batches again with no state handoff,
because both paths mutate the very same engine.
"""

from __future__ import annotations

import math
from collections import Counter
from itertools import repeat
from time import perf_counter

import numpy as np

from repro.sim.batch.closing import close_epochs
from repro.sim.engine import Engine
from repro.sim.trace import StepRecord
from repro.units import MB


class ShardSpanEngine:
    """Vectorized window stepping for one fleet shard's engine.

    The caller owns eligibility: every session must satisfy
    :func:`~repro.sim.batch.eligibility.unbatchable_lane_reason` is
    ``None`` for the whole window (the fleet shard checks at each
    window start and falls back wholesale otherwise).  ``advance`` and
    ``step_once`` may be interleaved freely — both drive the same
    engine state and RNG streams in the same order.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self.dt: float = engine.config.dt
        # Exact-float fold memos (the scalar loop's accumulate-and-
        # compare arithmetic, replayed once per distinct start value).
        self._close_memo: dict[tuple[float, float], int] = {}
        self._done_memo: dict[tuple[float, float], int] = {}
        self._fold_memo: dict[tuple[float, int], float] = {}
        self._sub_memo: dict[tuple[float, int], float] = {}
        self._dead_memo: dict[float, int] = {}
        self._change_ticks: list[int] | None = None
        #: Histogram of realized lane widths: {live lanes -> spans run
        #: at that width}.  The bench reports this distribution.
        self.lane_widths: Counter = Counter()
        #: Wall seconds per phase: vectorized span advance vs batched
        #: epoch close vs tuner dispatch.  The fused cross-shard driver
        #: (repro.service.fusion) accumulates into the same buckets.
        self.phase_s = {"span": 0.0, "close": 0.0, "dispatch": 0.0}

    # -- span prediction -------------------------------------------------

    def _steps_to_close(self, ee0: float, target: float) -> int:
        key = (ee0, target)
        n = self._close_memo.get(key)
        if n is None:
            dt = self.dt
            n = 0
            v = ee0
            while v < target - 1e-9:
                v += dt
                n += 1
            self._close_memo[key] = n
        return n

    def _steps_to_done(self, el0: float, limit: float) -> int:
        """Steps until ``elapsed_s`` (sequential ``+= dt`` from
        ``el0``) reaches the duration limit — unlike BatchEngine's
        global-tick version, lanes admitted mid-run sit at different
        fold positions, so the start value is part of the key."""
        key = (el0, limit)
        n = self._done_memo.get(key)
        if n is None:
            dt = self.dt
            n = 0
            v = el0
            while v < limit:
                v += dt
                n += 1
            self._done_memo[key] = n
        return n

    def _dead_steps(self, rr: float) -> int:
        """How many whole steps ``restart_remaining`` stays >= dt — the
        lane's dead prefix, and an allocation change point when it ends
        (the lane rejoins the live set every other lane contends with).
        """
        n = self._dead_memo.get(rr)
        if n is None:
            dt = self.dt
            n = 0
            v = rr
            while v >= dt:
                v -= dt
                n += 1
            self._dead_memo[rr] = n
        return n

    def _fold_dt(self, start: float, k: int) -> float:
        """``start`` folded forward by ``k`` sequential ``+= dt``."""
        key = (start, k)
        v = self._fold_memo.get(key)
        if v is None:
            dt = self.dt
            v = start
            for _ in range(k):
                v += dt
            self._fold_memo[key] = v
        return v

    def _fold_sub(self, rr: float, k: int) -> float:
        """``restart_remaining`` after ``k`` scalar decrements
        (``max(0, rr - dt)`` each step, exactly as the step loop)."""
        key = (rr, k)
        v = self._sub_memo.get(key)
        if v is None:
            dt = self.dt
            v = rr
            for _ in range(k):
                v = max(0.0, v - dt)
            self._sub_memo[key] = v
        return v

    def _compute_change_ticks(self, schedule) -> list[int]:
        """Global ticks at which the shared load changes, matching
        ``schedule.at(tick * dt)``'s bisect semantics."""
        dt = self.dt
        ticks = []
        for c in schedule.change_times:
            m = max(1, math.ceil(c / dt))
            while m * dt < c:
                m += 1
            while m > 1 and (m - 1) * dt >= c:
                m -= 1
            ticks.append(m)
        return ticks

    # -- window advance --------------------------------------------------

    def prepare(self) -> None:
        """One-time window setup (idempotent): start the engine and
        resolve the shared schedule's change ticks.  The fused
        cross-shard driver calls this before interleaving spans."""
        self.engine._ensure_started()
        if self._change_ticks is None:
            self._change_ticks = self._compute_change_ticks(
                self.engine.schedule
            )

    def span_len(self, active: list, tick: int, kmax: int) -> int:
        """Longest span from ``tick`` (at most ``kmax``) on which no
        lane hits a change point — epoch close, duration done, restart
        crossing — and the shared load stays constant."""
        k = kmax
        dt = self.dt
        for s in active:
            m = self._steps_to_close(s.epoch_elapsed, s.epoch_target_s())
            if m < k:
                k = m
            limit = s.spec.max_duration_s
            if limit is not None:
                m = self._steps_to_done(s.state.elapsed_s, limit)
                if m < k:
                    k = m
            if s.restart_remaining >= dt:
                m = self._dead_steps(s.restart_remaining)
                if m < k:
                    k = m
        for m in self._change_ticks:
            if m > tick and m - tick < k:
                k = m - tick
        return k

    def advance(self, n: int) -> None:
        """Advance the engine ``n`` steps — bit-identical to ``n``
        ``step_once`` calls, including every epoch close and tuner
        dispatch landing on its exact tick."""
        e = self.engine
        self.prepare()
        sessions = e.sessions
        tick = e.clock.tick
        end = tick + n
        phase_s = self.phase_s
        while tick < end:
            active = [s for s in sessions if not s.done]
            if not active:
                # Pure clock ticks: the scalar loop moves nothing and
                # closes nothing when every session is done.
                tick = end
                break
            k = self.span_len(active, tick, end - tick)
            if k < 1:
                raise RuntimeError(
                    "shard span prediction collapsed to zero steps"
                )
            t0 = perf_counter()
            self._advance_span(active, tick, k)
            tick += k
            e.clock.tick = tick
            t1 = perf_counter()
            phase_s["span"] += t1 - t0
            self.close_boundaries()
        e.clock.tick = tick
        # The batched windows bypass the scalar fast path's allocation
        # cache; invalidate it so an interleaved scalar step (the fleet
        # drain path) recomputes instead of trusting a stale entry.
        e._alloc_key = None
        e._alloc_val = None

    def close_boundaries(self) -> None:
        """Close every epoch at its boundary (batched, in session order
        as the scalar loop) and dispatch the survivors.  Closes consume
        no RNG and touch only their own session, so close-all-then-
        dispatch-all is draw-neutral."""
        pending = self.close_pending()
        if pending:
            t0 = perf_counter()
            self._dispatch_round(pending)
            self.phase_s["dispatch"] += perf_counter() - t0

    def close_pending(self) -> list:
        """Close every boundary epoch (batched, in session order) and
        return the ``(session, record)`` pairs still awaiting their
        tuner dispatch — *without* dispatching them.  The fused
        cross-shard driver collects each shard's pending round and
        batches the dispatch exponentials over all of them."""
        e = self.engine
        now = e.clock.now
        closers = []
        for s in e.sessions:
            if s.epoch_elapsed <= 0:
                continue
            if s.epoch_elapsed >= s.epoch_target_s() - 1e-9 or s.done:
                closers.append(s)
        if not closers:
            return []
        t0 = perf_counter()
        recs = close_epochs(closers, now)
        pending = [
            (s, rec) for s, rec in zip(closers, recs) if not s.done
        ]
        self.phase_s["close"] += perf_counter() - t0
        return pending

    def dispatch_normals(self, m: int):
        """The dispatch round's sized pre-draws for ``m`` epochs:
        ``(noise_z, rjit_z)`` raw normals per stream, None where the
        sigma is zero (``lognormal_factor`` draws nothing there).

        numpy's sized draws produce the exact value sequence of ``m``
        scalar draws, and the two streams are independent generators,
        so per-stream order is all that matters.  The ``exp`` is left
        to the caller: the fused cross-shard round batches it over
        every shard's draws at once.
        """
        e = self.engine
        sig_n = e.config.noise_sigma_epoch
        zn = (e._rng_noise.normal(-0.5 * sig_n * sig_n, sig_n, size=m)
              if sig_n > 0.0 else None)
        sig_r = e.client.restart.jitter_sigma
        zr = (e._rng_rjit.normal(-0.5 * sig_r * sig_r, sig_r, size=m)
              if sig_r > 0.0 else None)
        return zn, zr

    def apply_dispatch(self, pending: list, noises, rjits) -> None:
        """Dispatch closed epochs in session order with pre-drawn
        per-epoch factors."""
        e = self.engine
        for (s, rec), noise, rjit in zip(pending, noises, rjits):
            e._dispatch_epoch(s, rec, noise=noise, rjit=rjit)

    def _dispatch_round(self, pending: list) -> None:
        """Dispatch every epoch closed this tick, in session order,
        with one sized pre-draw per stream."""
        zn, zr = self.dispatch_normals(len(pending))
        noises = np.exp(zn).tolist() if zn is not None else repeat(1.0)
        rjits = np.exp(zr).tolist() if zr is not None else repeat(1.0)
        self.apply_dispatch(pending, noises, rjits)

    def _advance_span(self, active: list, tick0: int, k: int) -> None:
        """Vectorized equivalent of ``k`` scalar advance phases for the
        span's constant membership/allocation — BatchEngine's
        ``_advance_span`` arithmetic, with the allocation shared across
        rows and the jitter interleave step-major (see module doc)."""
        ctx = self.collect_span(active, tick0, k)
        if ctx is None:
            return
        out = _span_chain(ctx["RS"], ctx["Z"], ctx["c1"], ctx["tau"],
                          ctx["tss0"], ctx["er0"], ctx["eb0"], self.dt)
        self.commit_span(ctx, out, tick0, k)

    def collect_span(self, active: list, tick0: int, k: int):
        """Phase 1 of a span: fold the dt-paced counters, append dead
        rows' records, draw the live rows' step jitter, and gather the
        matrix-chain inputs.  Returns None when no live row needs the
        chain, else a context dict for :func:`_span_chain` /
        :meth:`commit_span`.

        The fused cross-shard driver (repro.service.fusion) collects
        each shard's context, stacks the input rows, and runs ONE chain
        — exact because the chain is elementwise plus row-local
        ``axis=1`` folds, so rows are independent of their neighbours.
        """
        e = self.engine
        dt = self.dt
        load = e.schedule.at(tick0 * dt)
        self.lane_widths[len(active)] += 1
        fold_dt = self._fold_dt

        live = [s for s in active if s.restart_remaining < dt]
        if not live and load.ext_cmp == 0 and load.ext_tfr == 0:
            # All lanes dead under a purely endogenous load:
            # ``_allocation_phase`` provably returns exactly
            # (0.0, {}, 1.0) here — no external compute task means no
            # EXT_CMP share, the live flow set is empty, and zero
            # runnable streams short-circuits the efficiency model —
            # so skip its full population walk.
            cmp_frac, alloc, eta = 0.0, {}, 1.0
        else:
            cmp_frac, alloc, eta = e._allocation_phase(load)
        # The value the scalar loop leaves in _last_cmp_frac on every
        # step of this span (restart dead time reads it at dispatch).
        e._last_cmp_frac = cmp_frac

        # Dead rows (restart window >= one full step across the whole
        # span — the span breaks at every lane's dead-prefix end) need
        # no matrix: every scalar-path output is an exact zero
        # (moved = 0.0, run_s = 0.0, and x + 0.0 == x for the
        # nonnegative accumulators), so only the dt-paced counters
        # fold and the all-restarting records append.
        if len(live) < len(active):
            t_dead = ((tick0 + np.arange(k)) * dt).tolist()
            for s in active:
                if s.restart_remaining < dt:
                    continue
                s.epoch_elapsed = fold_dt(s.epoch_elapsed, k)
                s.state.elapsed_s = fold_dt(s.state.elapsed_s, k)
                s.restart_remaining = self._fold_sub(
                    s.restart_remaining, k)
                s.trace.steps.extend(map(
                    tuple.__new__, repeat(StepRecord),
                    zip(t_dead, repeat(0.0), repeat(True),
                        repeat(0.0)),
                ))
            if not live:
                return None

        L = len(live)
        RS = np.full((L, k), dt)  # per-step running seconds
        Z = np.zeros((L, k))  # normal draws under the step jitter
        c1 = np.zeros(L)  # (alloc * eta) * noise_factor
        tau = np.empty(L)
        tss0 = np.empty(L)
        er0 = np.empty(L)
        eb0 = np.empty(L)
        frozen: list[int] = []  # rows whose ramp clock must not move
        nflags: list[int] = []  # restarting-flag prefix length per row
        draw_rows: list[int] = []  # rows drawing step jitter

        taus = e._tau
        sigma = e.config.noise_sigma_step

        for row, s in enumerate(live):
            tau[row] = taus[s.name]
            tss0[row] = s.time_since_start
            er0[row] = s.epoch_run_s
            eb0[row] = s.epoch_bytes
            # dt-paced counters need no matrix: fold them directly with
            # the scalar loop's exact sequential accumulation.
            s.epoch_elapsed = fold_dt(s.epoch_elapsed, k)
            s.state.elapsed_s = fold_dt(s.state.elapsed_s, k)

            rr = s.restart_remaining
            if rr > 0.0:
                # Partial first step; live (and below one step) after.
                RS[row, 0] = dt - rr
                nflags.append(1)
            else:
                nflags.append(0)
            s.restart_remaining = 0.0
            rate = alloc.get(s.name)
            if rate is None:
                # Live but absent from the allocation (no flow group):
                # the scalar path draws nothing, moves nothing, and
                # does not advance the ramp clock — but epoch_run_s
                # still accumulates the step's run seconds.
                frozen.append(row)
                continue
            draw_rows.append(row)
            c1[row] = (rate * eta) * s.noise_factor

        # Shared-stream jitter: the scalar loop draws step-major (each
        # step, the drawing sessions in session order).  One sized draw
        # reshaped (k, m) and transposed reproduces that interleave
        # row-for-row.  Drawing rows draw at *every* span step (their
        # dead prefix is empty by the span break above).
        nd = len(draw_rows)
        if sigma > 0.0 and nd:
            Z[draw_rows, :] = e.rng.throughput_noise.normal(
                -0.5 * sigma * sigma, sigma, size=k * nd
            ).reshape(k, nd).T

        return {
            "live": live, "RS": RS, "Z": Z, "c1": c1, "tau": tau,
            "tss0": tss0, "er0": er0, "eb0": eb0,
            "frozen": set(frozen), "nflags": nflags,
        }

    def commit_span(self, ctx: dict, out: tuple, tick0: int,
                    k: int) -> None:
        """Phase 3 of a span: write the chain outputs back into the
        sessions and append their step records."""
        B, MV, RREC, er, eb = out
        t_list = ((tick0 + np.arange(k)) * self.dt).tolist()
        frozen_set = ctx["frozen"]
        nflags = ctx["nflags"]
        for row, s in enumerate(ctx["live"]):
            # Plain python floats: downstream consumers (close_epoch,
            # status documents) must not see np.float64.
            s.epoch_run_s = float(er[row])
            s.epoch_bytes = float(eb[row])
            if row not in frozen_set:
                s.time_since_start = float(B[row, -1])
            if nflags[row]:
                flags = [True] + [False] * (k - 1)
            else:
                flags = repeat(False, k)
            # tuple.__new__ skips the NamedTuple's generated __new__
            # (~2x per record); records materialize per span so a
            # window's closes see complete traces.
            s.trace.steps.extend(map(
                tuple.__new__, repeat(StepRecord),
                zip(t_list, RREC[row].tolist(), flags,
                    MV[row].tolist()),
            ))


def _span_chain(RS, Z, c1, tau, tss0, er0, eb0, dt):
    """Phase 2 of a span: the ramp/rate/bytes matrix chain.

    Operand-for-operand the scalar loop's arithmetic (see BatchEngine's
    ``_advance_span`` for the derivation; buffer reuse via ``out=`` is
    pure notation).  Every operation is elementwise or a row-local
    ``axis=1`` fold, so rows from *different shards* may be stacked into
    one call and split back with no change in any row's result — that
    row independence is what makes cross-shard span fusion bit-exact.

    Returns ``(B, MV, RREC, er, eb)``: ramp-clock bounds, per-step
    bytes, step-record rates, and the folded epoch accumulators.
    """
    L, k = RS.shape
    tau_col = tau[:, None]
    B = np.add.accumulate(
        np.concatenate([tss0[:, None], RS], axis=1), axis=1
    )
    A = B / np.negative(tau_col)
    # The scalar ramp uses math.exp, which differs from np.exp in the
    # last ulp; evaluate per element.
    E = np.fromiter(
        map(math.exp, A.ravel().tolist()),
        dtype=np.float64,
        count=L * (k + 1),
    ).reshape(L, k + 1)
    RSx = np.where(RS > 0.0, RS, 1.0)  # 0/0 guard on dead steps
    T = np.subtract(E[:, :-1], E[:, 1:])
    np.divide(tau_col, RSx, out=RSx)
    np.multiply(RSx, T, out=T)
    np.subtract(1.0, T, out=T)  # T = RAMP
    np.exp(Z, out=Z)  # per-element scalar np.exp (lognormal_factor)
    np.multiply(c1[:, None], Z, out=Z)
    np.multiply(Z, T, out=Z)  # Z = RATE = (c1 * J) * RAMP
    np.multiply(Z, MB, out=T)
    MV = T * RS  # (RATE * MB) * RS
    np.divide(MV, MB, out=T)
    np.divide(T, dt, out=Z)
    RREC = Z  # step-record rate: (MV / MB) / dt

    # Epoch accumulators: exact sequential left folds.
    er = np.add.accumulate(
        np.concatenate([er0[:, None], RS], axis=1), axis=1)[:, -1]
    eb = np.add.accumulate(
        np.concatenate([eb0[:, None], MV], axis=1), axis=1)[:, -1]
    return B, MV, RREC, er, eb
