"""Which engine configurations the batch path can express.

The batch engine advances many single-session, duration-limited runs in
lockstep (see :mod:`repro.sim.batch.engine`).  Everything it cannot
express falls back to the scalar engine *per run* — callers ask
:func:`unbatchable_reason` and route the lane accordingly, so a mixed
population always completes with bit-identical results.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine


def unbatchable_reason(engine: "Engine") -> str | None:
    """Why ``engine`` cannot join a batch, or ``None`` if it can.

    The batch path expresses exactly the configuration space whose span
    structure is predictable from step arithmetic alone: one
    driver-owned session per engine, infinite bytes with a duration
    limit (completion cannot depend on the bytes moved), and no
    mid-epoch state the span solver does not model (fault schedules,
    joint controllers, sink-driven tenants, journals, live
    instrumentation).  Retry policies and circuit breakers *are*
    supported: with no faults they act only inside the epoch dispatch,
    which the batch engine reuses verbatim.
    """
    if engine._started:
        return "engine already started"
    if engine.controllers:
        return "joint controllers"
    if engine.epoch_sink is not None:
        return "sink-driven sessions"
    if engine.journal is not None:
        return "journaled run"
    if engine.obs is not None and engine.obs.active:
        return "instrumented run"
    if len(engine.sessions) != 1:
        return "multi-session substrate"
    s = engine.sessions[0]
    if s.driver is None:
        return "session has no tuner driver"
    if s.fault_schedule is not None:
        return "fault schedule"
    if s.fault_model is not None:
        return "legacy fault model"
    if not math.isinf(s.spec.total_bytes):
        return "finite-bytes transfer"
    if s.spec.max_duration_s is None:
        return "unbounded duration"
    if s.disk_cap_fn is not None:
        return "disk-cap model"
    return None
