"""Which engine configurations the batch path can express.

The batch engine advances many single-session, duration-limited runs in
lockstep (see :mod:`repro.sim.batch.engine`).  Everything it cannot
express falls back to the scalar engine *per run* — callers ask
:func:`unbatchable_reason` and route the lane accordingly, so a mixed
population always completes with bit-identical results.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Engine
    from repro.sim.session import TransferSession


def unbatchable_reason(engine: "Engine") -> str | None:
    """Why ``engine`` cannot join a batch, or ``None`` if it can.

    The batch path expresses exactly the configuration space whose span
    structure is predictable from step arithmetic alone: one
    driver-owned session per engine, infinite bytes with a duration
    limit (completion cannot depend on the bytes moved), and no
    mid-epoch state the span solver does not model (fault schedules,
    joint controllers, sink-driven tenants, journals, live
    instrumentation).  Retry policies and circuit breakers *are*
    supported: with no faults they act only inside the epoch dispatch,
    which the batch engine reuses verbatim.
    """
    if engine._started:
        return "engine already started"
    if engine.controllers:
        return "joint controllers"
    if engine.epoch_sink is not None:
        return "sink-driven sessions"
    if engine.journal is not None:
        return "journaled run"
    if engine.obs is not None and engine.obs.active:
        return "instrumented run"
    if len(engine.sessions) != 1:
        return "multi-session substrate"
    s = engine.sessions[0]
    if s.driver is None:
        return "session has no tuner driver"
    if s.fault_schedule is not None:
        return "fault schedule"
    if s.fault_model is not None:
        return "legacy fault model"
    if not math.isinf(s.spec.total_bytes):
        return "finite-bytes transfer"
    if s.spec.max_duration_s is None:
        return "unbounded duration"
    if s.disk_cap_fn is not None:
        return "disk-cap model"
    return None


def unbatchable_lane_reason(session: "TransferSession") -> str | None:
    """Why one *substrate session* blocks its shard's batched window,
    or ``None`` if it can ride a vectorized span.

    The fleet-shard span engine (:mod:`repro.sim.batch.shard`) shares
    one engine across all lanes, so this is the per-session analogue of
    :func:`unbatchable_reason`: anything whose mid-epoch behavior the
    span solver does not model forces the *whole window* onto the
    scalar loop (sessions are coupled through the max-min allocation —
    one lane's fault changes every other lane's rate).  A fault
    schedule only blocks while it is still *active*: once every event
    lies behind the session's epoch index the schedule is inert (rate
    factor 1.0, no fault kinds) and the session rejoins the lanes —
    this is how blackout-struck shards rebin back to batched windows.
    """
    sched = session.fault_schedule
    if sched is not None and sched.last_epoch >= session.epoch_index:
        return "fault schedule"
    if session.fault_model is not None:
        return "legacy fault model"
    if session.retry_state is not None:
        return "retry policy"
    if session.breaker is not None:
        return "circuit breaker"
    if not math.isinf(session.spec.total_bytes):
        return "finite-bytes transfer"
    if session.spec.max_duration_s is None:
        return "unbounded duration"
    if session.disk_cap_fn is not None:
        return "disk-cap model"
    return None


#: Reasons a lane's window-end dispatch steps its scalar generator
#: instead of riding a tuner population (repro.sim.batch.dispatch).
#: Unlike the batch/window reasons above these are advisory per *lane*:
#: a dispatch-fallback lane still rides the vectorized spans — only its
#: proposals stay per-lane python.
DISPATCH_UNSUPPORTED = "dispatch:unsupported-tuner"
DISPATCH_RECOVERY = "dispatch:recovery-machinery"
DISPATCH_INSTRUMENTED = "dispatch:instrumented-run"
DISPATCH_LATE_JOIN = "dispatch:late-join"


def dispatch_fallback_reason(
    engine: "Engine", session: "TransferSession"
) -> str | None:
    """Why one lane's epoch dispatch cannot join a tuner population.

    Population dispatch replaces the scalar ladder's clean path
    (``driver.observe`` → ``_adopt``) with one ``(B,)``-array step, so
    it requires exactly the lanes on which the ladder is guaranteed to
    *take* the clean path every epoch: no retry/breaker/fault machinery
    (those consume extra RNG draws and can reroute the dispatch), no
    observability bus (the ladder emits per-dispatch tuner events), and
    a driver that knows its :class:`~repro.core.base.Tuner` so lanes can
    be grouped by class.  Lanes failing any test keep the scalar ladder,
    tallied once per lane under these reasons.
    """
    if engine.obs is not None:
        return DISPATCH_INSTRUMENTED
    if (session.retry_state is not None
            or session.breaker is not None
            or session.fault_model is not None
            or session.fault_schedule is not None):
        return DISPATCH_RECOVERY
    driver = session.driver
    if driver is None or getattr(driver, "tuner", None) is None:
        return DISPATCH_UNSUPPORTED
    return None
