"""Vectorized batch engine: struct-of-arrays simulation across runs.

``BatchEngine`` advances B independent single-session runs in lockstep
with the per-step arithmetic vectorized across the run axis;
``unbatchable_reason`` classifies which configurations must stay on the
scalar path.  Batched lanes are bit-identical (epochs AND steps) to the
scalar reference — see DESIGN.md §15.
"""

from repro.sim.batch.eligibility import (
    unbatchable_lane_reason,
    unbatchable_reason,
)
from repro.sim.batch.engine import BatchEngine
from repro.sim.batch.shard import ShardSpanEngine

__all__ = [
    "BatchEngine",
    "ShardSpanEngine",
    "unbatchable_lane_reason",
    "unbatchable_reason",
]
