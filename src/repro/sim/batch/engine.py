"""Struct-of-arrays batch engine: B independent runs in lockstep.

:class:`BatchEngine` advances B independent scalar engines (seeds ×
scenarios × tuners, one session each) on one shared tick grid, with the
per-step arithmetic vectorized across the run axis ("lanes").  The
scalar engine stays the bit-exactness reference: a batched lane
produces *identical* epochs and step records to ``engine.run()`` on the
same engine object.

How
---
The step loop is replaced by a *span* loop.  A span is the longest run
of ticks on which no lane hits a change point — an epoch closure, a
transfer-duration completion, or a load-schedule transition.  Span
length is pure step arithmetic (the same float folds the scalar loop
applies, so boundaries land on the same tick), which is exactly the
prediction trick that already protects the scalar fast path's jitter
batching.  Within a span, every per-lane quantity is a row in a
``(lanes, span)`` matrix:

* restart bookkeeping runs as a per-lane prefix loop (dead steps move
  nothing), yielding each lane's ``run_s`` row;
* step-jitter draws come from one sized ``Generator.normal`` call per
  lane (numpy's sized draws produce the identical value sequence and
  end state as n scalar calls — the RNG-order contract);
* the slow-start ramp, rate, and bytes-moved arithmetic use the same
  operation order as the scalar loop (``math.exp`` per element for the
  ramp, since ``np.exp`` differs from ``math.exp`` in the last ulp);
* epoch accumulators advance by ``np.add.accumulate`` — an exact
  sequential left fold, unlike ``np.sum``'s pairwise reduction.

At span ends, epoch closure and tuner dispatch reuse the scalar
engine's own ``close_epoch``/``_dispatch_epoch`` verbatim, so the
per-epoch RNG draw order (noise, restart jitter, backoff) and the whole
retry/breaker ladder are shared code, not a re-implementation.  Each
lane draws from its own seeded :class:`~repro.sim.rng.RngStreams`, so
only within-lane order matters and lanes are independent.

Allocation (CPU shares → flow groups → max-min fair share) only changes
at change points; the batch engine memoizes it across lanes *and*
spans, keyed by ``(alloc_group, load, params)``.  Lanes that share a
scenario substrate pass the same ``alloc_group`` id and hit each
other's entries.

Step records are materialized once at the end of the run from the
columnar buffers — the dominant cost of a batched run is building the
per-step dataclasses, not simulating.
"""

from __future__ import annotations

import math
from itertools import chain, repeat
from time import perf_counter
from typing import Sequence

import numpy as np

from repro.sim.batch.closing import close_epochs
from repro.sim.batch.dispatch import PopulationDispatcher, take_std_normals
from repro.sim.batch.eligibility import unbatchable_reason
from repro.sim.engine import Engine
from repro.sim.trace import StepRecord, Trace
from repro.units import MB


class BatchEngine:
    """Advance several single-session scalar engines in lockstep.

    Parameters
    ----------
    engines:
        Fresh (un-started) engines, one lane each.  Every lane must be
        batchable (:func:`unbatchable_reason` returns ``None``) and all
        lanes must share one ``dt``.  Heterogeneous seeds, tuners,
        scenarios, durations, epoch offsets, and load schedules are
        fine.
    alloc_groups:
        Optional one int per lane: lanes with equal ids share
        allocation-memo entries and must therefore be built on
        equivalent substrates (same topology/host/client/config
        semantics — e.g. the same scenario and param mapping).  Default
        gives every lane its own group (always correct, fewer hits).
    population_dispatch:
        When True (default) window-end dispatches route through
        :class:`~repro.sim.batch.dispatch.PopulationDispatcher`:
        homogeneous tuner populations (cd/cs/gss) advance as one array
        step per window, everything else keeps the scalar ladder with
        per-lane ``dispatch:*`` fallback reasons.  False forces every
        lane onto the scalar ladder (the pre-population behavior; the
        dispatch micro-bench uses it as its baseline).
    batched_close:
        When True (default) window boundaries close through the
        numpy :func:`~repro.sim.batch.closing.close_epochs` helper and
        lockstep batches take the homogeneous boundary shortcuts.
        False restores the per-lane scalar boundary (one
        ``close_epoch`` call per lane, per-lane close/done loops) —
        the pre-batched-close behavior the dispatch micro-bench uses,
        with ``population_dispatch=False``, as its baseline.
    """

    def __init__(
        self,
        engines: Sequence[Engine],
        *,
        alloc_groups: Sequence[int] | None = None,
        population_dispatch: bool = True,
        batched_close: bool = True,
    ) -> None:
        engines = list(engines)
        if not engines:
            raise ValueError("BatchEngine needs at least one engine")
        if len({id(e) for e in engines}) != len(engines):
            raise ValueError("duplicate engine objects in batch")
        problems = [
            f"lane {i}: {reason}"
            for i, e in enumerate(engines)
            if (reason := unbatchable_reason(e)) is not None
        ]
        if problems:
            raise ValueError(
                "unbatchable engines (route them to the scalar path): "
                + "; ".join(problems)
            )
        dts = {e.config.dt for e in engines}
        if len(dts) != 1:
            raise ValueError(f"lanes must share one dt, got {sorted(dts)}")
        if alloc_groups is None:
            alloc_groups = range(len(engines))
        alloc_groups = [int(g) for g in alloc_groups]
        if len(alloc_groups) != len(engines):
            raise ValueError("alloc_groups must have one entry per engine")

        self.engines = engines
        self.dt: float = engines[0].config.dt
        self._groups = alloc_groups
        self._sessions = [e.sessions[0] for e in engines]
        # Allocation memo: (group, load, params) -> (cmp_frac, rate, eta)
        # for the *live* (not restarting) configuration.  cmp_frac is
        # restart-independent (_cpu_shares only filters done sessions),
        # and the rate is only consumed on steps with run_s > 0, where
        # the scalar path sees the live allocation too.
        self._alloc_memo: dict = {}
        # Span-length folds, memoized: these replay the scalar loop's
        # exact accumulate-and-compare float arithmetic so change
        # points land on the same tick.
        self._close_memo: dict[tuple[float, float], int] = {}
        self._done_memo: dict[float, int] = {}
        # (start, k) -> start folded forward by k sequential += dt —
        # replaces a full-matrix accumulate for the dt-paced
        # accumulators (epoch_elapsed / elapsed_s).
        self._fold_memo: dict[tuple[float, int], float] = {}
        # (restart prefix length, span length) -> shared flag row.
        self._flag_cache: dict[tuple[int, int], list[bool]] = {}
        self._homog = False
        self._change_ticks = [
            self._compute_change_ticks(e.schedule) for e in engines
        ]
        # Deferred columnar step buffers, one list of row arrays per
        # lane; records are materialized once at the end of the run.
        n = len(engines)
        self._col_t: list[list] = [[] for _ in range(n)]
        self._col_rate: list[list] = [[] for _ in range(n)]
        self._col_mv: list[list] = [[] for _ in range(n)]
        self._col_flag: list[list] = [[] for _ in range(n)]
        self.dispatcher = (
            PopulationDispatcher() if population_dispatch else None
        )
        self.batched_close = batched_close
        #: Wall seconds per phase (satellite of the dispatch work):
        #: vectorized span advance vs batched close vs tuner dispatch.
        self.phase_s = {"span": 0.0, "close": 0.0, "dispatch": 0.0}

    # -- public API ------------------------------------------------------

    def run(self) -> list[dict[str, Trace]]:
        """Advance every lane to completion; returns one ``run()``-shaped
        trace dict per lane, in lane order."""
        for e in self.engines:
            e._ensure_started()
        # Per-lane invariants, resolved once (attribute chains and the
        # RngStreams __getattr__ indirection are measurable across
        # thousands of lane-spans): (engine, session, schedule.at,
        # noise sigma, ramp tau, jitter generator, the lane's constant
        # load when its schedule never changes, else None).
        self._lane = [
            (
                e,
                s,
                e.schedule.at,
                e.config.noise_sigma_step,
                e._tau[s.name],
                e.rng.throughput_noise,
                None if self._change_ticks[i] else e.schedule.at(0.0),
            )
            for i, (e, s) in enumerate(zip(self.engines, self._sessions))
        ]
        done_tick = [
            self._steps_to_done(s.spec.max_duration_s)
            for s in self._sessions
        ]
        sessions = self._sessions
        engines = self.engines
        change_ticks = self._change_ticks
        close_memo = self._close_memo
        steps_to_close = self._steps_to_close
        dt = self.dt
        # Lanes with one epoch grid, one duration, and static loads stay
        # in lockstep for the whole run (their dt-paced counters get
        # identical folds, and nothing batchable ends a lane early), so
        # one lane's span prediction serves the batch.
        homog = self._homog = (
            self.batched_close
            and len(set(done_tick)) == 1
            and len({(s.spec.epoch_s, s.spec.epoch_offset_s)
                     for s in sessions}) == 1
            and not any(change_ticks)
        )
        tick = 0
        active = [i for i, s in enumerate(sessions) if not s.done]
        while active:
            # Span length: min over active lanes of steps to the next
            # change point (epoch close, completion, load change).
            k = None
            for i in (active[:1] if homog else active):
                s = sessions[i]
                spec = s.spec
                target = spec.epoch_s
                if s.epoch_index == 0:
                    target += spec.epoch_offset_s
                key = (s.epoch_elapsed, target)
                n = close_memo.get(key)
                if n is None:
                    n = steps_to_close(s.epoch_elapsed, target)
                n_done = done_tick[i] - tick
                if n_done < n:
                    n = n_done
                for m in change_ticks[i]:
                    if m > tick and m - tick < n:
                        n = m - tick
                if k is None or n < k:
                    k = n
            if k < 1:
                raise RuntimeError(
                    "batch span prediction collapsed to zero steps"
                )
            t0 = perf_counter()
            self._advance_span(active, tick, k)
            tick += k
            now = tick * dt
            t1 = perf_counter()
            for i in active:
                engines[i].clock.tick = tick
            if homog:
                # Lockstep lanes share every dt-paced fold: they close
                # (and finish) together, so one lane answers for all.
                s = sessions[active[0]]
                target = s.spec.epoch_s
                if s.epoch_index == 0:
                    target += s.spec.epoch_offset_s
                closers = (
                    list(active)
                    if s.epoch_elapsed >= target - 1e-9 or s.done
                    else []
                )
            else:
                closers = []
                for i in active:
                    s = sessions[i]
                    spec = s.spec
                    target = spec.epoch_s
                    if s.epoch_index == 0:
                        target += spec.epoch_offset_s
                    if s.epoch_elapsed >= target - 1e-9 or s.done:
                        closers.append(i)
            if closers:
                if self.batched_close:
                    recs = close_epochs(
                        [sessions[i] for i in closers], now)
                else:
                    recs = [
                        sessions[i].close_epoch(
                            start_time=now - sessions[i].epoch_elapsed)
                        for i in closers
                    ]
                t2 = perf_counter()
                if homog:
                    # Lockstep lanes finish together: lane 0's done
                    # state answers for every closer.
                    items = ([] if sessions[closers[0]].done else [
                        (i, engines[i], sessions[i], rec)
                        for i, rec in zip(closers, recs)
                    ])
                else:
                    items = [
                        (i, engines[i], sessions[i], rec)
                        for i, rec in zip(closers, recs)
                        if not sessions[i].done
                    ]
                if self.dispatcher is not None:
                    self.dispatcher.dispatch(items)
                else:
                    for i, e, s, rec in items:
                        e._dispatch_epoch(s, rec)
                t3 = perf_counter()
                self.phase_s["close"] += t2 - t1
                self.phase_s["dispatch"] += t3 - t2
            self.phase_s["span"] += t1 - t0
            # Batched lanes only finish by duration (finite-bytes and
            # fault-schedule lanes never batch), so lockstep lanes all
            # end at the shared done tick — skip the property churn.
            if not homog or tick >= done_tick[active[0]]:
                active = [i for i in active if not sessions[i].done]
        self._materialize()
        return [{s.name: s.trace} for s in self._sessions]

    # -- span prediction -------------------------------------------------

    def _steps_to_close(self, ee0: float, target: float) -> int:
        key = (ee0, target)
        n = self._close_memo.get(key)
        if n is None:
            dt = self.dt
            n = 0
            v = ee0
            while v < target - 1e-9:
                v += dt
                n += 1
            self._close_memo[key] = n
        return n

    def _steps_to_done(self, limit: float) -> int:
        """Total tick count at which a lane started at tick 0 is done
        (``elapsed_s`` accumulates dt on every step, so a lane's fold
        position equals the global tick)."""
        n = self._done_memo.get(limit)
        if n is None:
            dt = self.dt
            n = 0
            v = 0.0
            while v < limit:
                v += dt
                n += 1
            self._done_memo[limit] = n
        return n

    def _compute_change_ticks(self, schedule) -> list[int]:
        """Global ticks at which a lane's load changes, matching
        ``schedule.at(tick * dt)``'s bisect semantics (the new load
        applies on the first tick with ``tick * dt >= change_time``)."""
        dt = self.dt
        ticks = []
        for c in schedule.change_times:
            m = max(1, math.ceil(c / dt))
            while m * dt < c:
                m += 1
            while m > 1 and (m - 1) * dt >= c:
                m -= 1
            ticks.append(m)
        return ticks

    # -- span advance ----------------------------------------------------

    def _live_alloc(self, i: int, e: Engine, s, load):
        key = (self._groups[i], load, s.params)
        hit = self._alloc_memo.get(key)
        if hit is None:
            saved = s.restart_remaining
            s.restart_remaining = 0.0  # force the live configuration
            try:
                cmp_frac, alloc, eta = e._allocation_phase(load)
            finally:
                s.restart_remaining = saved
            hit = (cmp_frac, alloc.get(s.name), eta)
            self._alloc_memo[key] = hit
        return hit

    def _fold_dt(self, start: float, k: int) -> float:
        """``start`` folded forward by ``k`` sequential ``+= dt`` — the
        scalar loop's exact accumulation for the dt-paced counters."""
        key = (start, k)
        v = self._fold_memo.get(key)
        if v is None:
            dt = self.dt
            v = start
            for _ in range(k):
                v += dt
            self._fold_memo[key] = v
        return v

    def _advance_span(self, active: list[int], tick0: int, k: int) -> None:
        dt = self.dt
        lane = self._lane
        groups = self._groups
        alloc_get = self._alloc_memo.get
        fold_get = self._fold_memo.get
        fold_dt = self._fold_dt
        L = len(active)
        t0 = tick0 * dt
        t_row = (tick0 + np.arange(k)) * dt

        RS = np.full((L, k), dt)  # per-step running seconds
        Z = np.zeros((L, k))  # normal draws under the step jitter
        c1 = np.zeros(L)  # alloc * eta * noise_factor
        # Per-lane scalars gathered as python lists (a list append is
        # cheaper than a numpy scalar store) and converted once.
        tau_l: list[float] = []
        tss0_l: list[float] = []
        er0_l: list[float] = []
        eb0_l: list[float] = []
        frozen_tss: list[int] = []
        flag_rows: list[list[bool]] = []
        # Rows filled with raw buffered standard normals; scaled to
        # loc + sigma*z in one matrix op after the loop (tiny per-row
        # ufunc calls cost more than the draws they replace).
        buf_rows: list[int] = []
        z_loc = np.zeros(L)
        z_sig = np.zeros(L)
        # Lockstep lanes share every dt-paced counter: fold once.
        hoisted = None
        if self._homog:
            s0 = self._sessions[active[0]]
            hoisted = (fold_dt(s0.epoch_elapsed, k),
                       fold_dt(s0.state.elapsed_s, k))
        # Restart-prefix flag rows are tiny and read-only downstream
        # (materialize just iterates them) — share one list per shape.
        flag_cache = self._flag_cache

        for row, i in enumerate(active):
            e, s, sched_at, sigma, tau_i, jit_gen, const_load = lane[i]
            load = const_load if const_load is not None else sched_at(t0)
            hit = alloc_get((groups[i], load, s.params))
            if hit is None:
                hit = self._live_alloc(i, e, s, load)
            cmp_frac, rate, eta = hit
            # The closing step of any dispatch-bearing epoch is live
            # (restart dead time is capped at 0.9 epochs and only
            # charged at dispatch), so the live cmp_frac is what the
            # scalar loop leaves in _last_cmp_frac at every dispatch.
            e._last_cmp_frac = cmp_frac
            tau_l.append(tau_i)
            tss0_l.append(s.time_since_start)
            er0_l.append(s.epoch_run_s)
            eb0_l.append(s.epoch_bytes)
            # The dt-paced counters need no matrix: fold them directly.
            if hoisted is not None:
                s.epoch_elapsed, s.state.elapsed_s = hoisted
            else:
                v = fold_get((s.epoch_elapsed, k))
                s.epoch_elapsed = v if v is not None else fold_dt(
                    s.epoch_elapsed, k)
                v = fold_get((s.state.elapsed_s, k))
                s.state.elapsed_s = v if v is not None else fold_dt(
                    s.state.elapsed_s, k)

            # Restart prefix: same sequential float decrements as the
            # scalar loop (run_s = dt - clamp(rr); rr = max(0, rr - dt)).
            rr = s.restart_remaining
            fm = 0
            while fm < k and rr >= dt:
                rr -= dt
                fm += 1
            if fm:
                RS[row, :fm] = 0.0
            if fm < k:
                if rr > 0.0:
                    RS[row, fm] = dt - rr
                    nflag = fm + 1
                else:
                    nflag = fm
                s.restart_remaining = 0.0
            else:
                nflag = fm
                s.restart_remaining = rr
            flags = flag_cache.get((nflag, k))
            if flags is None:
                flags = flag_cache[(nflag, k)] = (
                    [True] * nflag + [False] * (k - nflag)
                )
            flag_rows.append(flags)

            if rate is None:
                # Session absent from the allocation: the scalar path
                # moves nothing and does not advance the ramp clock.
                frozen_tss.append(row)
            else:
                n_draws = k - fm
                if sigma > 0.0 and n_draws > 0:
                    # One jitter per step with run_s > 0, in step order
                    # — the same draws the scalar loop makes.
                    if e._pop_buffered:
                        # Inlined take_std_normals fast path: the block
                        # buffer usually holds the whole span's draws.
                        buf = e._pop_z
                        pos = e._pop_zpos
                        end = pos + n_draws
                        if buf is not None and end <= buf.shape[0]:
                            Z[row, fm:] = buf[pos:end]
                            e._pop_zpos = end
                        else:
                            Z[row, fm:] = take_std_normals(e, n_draws)
                        z_loc[row] = -0.5 * sigma * sigma
                        z_sig[row] = sigma
                        buf_rows.append(row)
                    else:
                        Z[row, fm:] = jit_gen.normal(
                            -0.5 * sigma * sigma, sigma, size=n_draws
                        )
                c1[row] = (rate * eta) * s.noise_factor

        if buf_rows:
            # loc + sigma*z per element — bitwise the sized normal
            # draw.  Entries the scalar path never draws (dead steps,
            # sigma 0 rows) scale to a harmless finite value: their
            # run_s is 0.0, so rate/bytes records stay exact zeros.
            scaled = z_loc[:, None] + z_sig[:, None] * Z
            if len(buf_rows) == L:
                Z = scaled
            else:
                mask = np.zeros(L, dtype=bool)
                mask[buf_rows] = True
                Z = np.where(mask[:, None], scaled, Z)

        # Ramp-clock bounds: B[:, j] is time_since_start entering step j
        # (dead steps add 0.0 — an exact no-op in the fold).  The chain
        # below reuses buffers via ``out=`` — every reuse is pure
        # notation (same operands, same order as the scalar loop);
        # IEEE division is sign-symmetric, so ``B / -tau == -B / tau``.
        tau_col = np.asarray(tau_l)[:, None]
        tss0 = np.asarray(tss0_l)
        er0 = np.asarray(er0_l)
        eb0 = np.asarray(eb0_l)
        B = np.add.accumulate(
            np.concatenate([tss0[:, None], RS], axis=1), axis=1
        )
        A = B / np.negative(tau_col)
        # The scalar ramp uses math.exp, which differs from np.exp in
        # the last ulp; evaluate per element.
        E = np.fromiter(
            map(math.exp, A.ravel().tolist()),
            dtype=np.float64,
            count=L * (k + 1),
        ).reshape(L, k + 1)
        # Dead steps (run_s == 0) divide by 1.0 instead: the ramp value
        # there is never used (it is multiplied by run_s == 0.0, which
        # is exact for any finite rate — but would be NaN-poisoned by a
        # 0/0).
        RSx = np.where(RS > 0.0, RS, 1.0)
        T = np.subtract(E[:, :-1], E[:, 1:])
        np.divide(tau_col, RSx, out=RSx)
        np.multiply(RSx, T, out=T)
        np.subtract(1.0, T, out=T)  # T = RAMP
        np.exp(Z, out=Z)  # == per-element scalar np.exp (lognormal_factor)
        np.multiply(c1[:, None], Z, out=Z)
        np.multiply(Z, T, out=Z)  # Z = RATE = (c1 * J) * RAMP
        np.multiply(Z, MB, out=T)
        MV = T * RS  # (RATE * MB) * RS
        np.divide(MV, MB, out=T)
        np.divide(T, dt, out=Z)
        RREC = Z  # (MV / MB) / dt

        # Epoch run-time/bytes accumulators: exact sequential left folds.
        er = np.add.accumulate(
            np.concatenate([er0[:, None], RS], axis=1), axis=1)[:, -1]
        eb = np.add.accumulate(
            np.concatenate([eb0[:, None], MV], axis=1), axis=1)[:, -1]

        frozen = set(frozen_tss)
        # Plain python floats: downstream consumers (close_epoch,
        # JSON cache entries) must not see np.float64.
        er_l = er.tolist()
        eb_l = eb.tolist()
        tss_l = B[:, -1].tolist()
        for row, i in enumerate(active):
            s = self._sessions[i]
            s.epoch_run_s = er_l[row]
            s.epoch_bytes = eb_l[row]
            if not frozen or row not in frozen:
                s.time_since_start = tss_l[row]
            self._col_t[i].append(t_row)
            self._col_rate[i].append(RREC[row])
            self._col_mv[i].append(MV[row])
            self._col_flag[i].append(flag_rows[row])

    # -- deferred record materialization ---------------------------------

    def _materialize(self) -> None:
        """Build every lane's StepRecord list from the columnar buffers.

        One C-speed ``map`` per lane, constructing through
        ``tuple.__new__(StepRecord, fields)`` to skip the NamedTuple's
        generated python-level ``__new__`` (~2x per record) —
        materialization would otherwise dominate the batched run.
        """
        # Lanes sharing the whole run on one epoch grid reference the
        # very same per-span time arrays; convert each distinct sequence
        # of spans once.
        times_cache: dict[tuple[int, ...], list[float]] = {}
        for i, s in enumerate(self._sessions):
            if not self._col_t[i]:
                continue
            tkey = tuple(id(a) for a in self._col_t[i])
            times = times_cache.get(tkey)
            if times is None:
                times = np.concatenate(self._col_t[i]).tolist()
                times_cache[tkey] = times
            rates = np.concatenate(self._col_rate[i]).tolist()
            moved = np.concatenate(self._col_mv[i]).tolist()
            flags = chain.from_iterable(self._col_flag[i])
            s.trace.steps.extend(map(
                tuple.__new__, repeat(StepRecord),
                zip(times, rates, flags, moved),
            ))
        # Cleared only after the loop: the id-keyed cache above needs
        # every span array kept alive until all lanes are materialized.
        n = len(self._sessions)
        self._col_t = [[] for _ in range(n)]
        self._col_rate = [[] for _ in range(n)]
        self._col_mv = [[] for _ in range(n)]
        self._col_flag = [[] for _ in range(n)]
