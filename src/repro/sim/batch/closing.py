"""Batched epoch close: ``TransferSession.close_epoch`` over the lane axis.

:func:`close_epochs` folds the per-lane observed-throughput aggregation
(``MB / elapsed``, ``MB / run_s``) into one numpy pass and assembles the
:class:`~repro.sim.trace.EpochRecord` tuples through ``tuple.__new__`` —
the same bulk-construction idiom the batch engine's step materializer
uses.  Every record is bit-identical to the scalar ``close_epoch``: the
division is elementwise IEEE double arithmetic in the same operand
order, ``start = now - epoch_elapsed`` is the scalar subtraction per
lane, and all array results cross back into python floats (downstream
consumers — tuners, JSON cache entries — must never see ``np.float64``).

Both batch engines (:mod:`repro.sim.batch.engine` per-lane substrates,
:mod:`repro.sim.batch.shard` shared substrates) close their window
boundaries through this helper.
"""

from __future__ import annotations

import numpy as np

from repro.faults.breaker import OPEN as OPEN_STATE
from repro.faults.events import OBS_LOSS
from repro.sim.trace import EpochRecord


def close_epochs(sessions, now: float) -> list[EpochRecord]:
    """Close one epoch on every session, in order; returns the records.

    Mirrors ``TransferSession.close_epoch(start_time=now - epoch_elapsed)``
    per session, with the float aggregation batched across lanes.
    """
    new = tuple.__new__
    ee_l = [s.epoch_elapsed for s in sessions]
    er_l = [s.epoch_run_s for s in sessions]
    eb_l = [s.epoch_bytes for s in sessions]
    ee = np.asarray(ee_l)
    er = np.asarray(er_l)
    eb = np.asarray(eb_l)
    if (ee <= 0).any():
        raise ValueError("cannot close an empty epoch")
    mb = eb / 1e6
    observed = (mb / ee).tolist()
    best = np.where(er > 0, mb / np.where(er > 0, er, 1.0), 0.0).tolist()
    starts = (now - ee).tolist()

    out: list[EpochRecord] = []
    for j, s in enumerate(sessions):
        fault = (s.epoch_fault_kind()
                 if s.fault_schedule is not None else None)
        faulted = fault is not None and fault != OBS_LOSS
        breaker_state = (s.breaker.state if s.breaker is not None
                         else "closed")
        rec = new(EpochRecord, (
            s.epoch_index,
            starts[j],
            ee_l[j],
            s.params,
            observed[j],
            best[j],
            eb_l[j],
            faulted,
            fault,
            (s.retry_state.total_retries
             if s.retry_state is not None else 0),
            breaker_state,
            fault is None and breaker_state != OPEN_STATE,
        ))
        trace = s.trace
        if trace.epochs and rec.index != trace.epochs[-1].index + 1:
            raise ValueError(
                f"epoch indices must be consecutive; got {rec.index} "
                f"after {trace.epochs[-1].index}"
            )
        trace.epochs.append(rec)
        s.last_epoch_steps = trace.steps[s._epoch_step_mark:]
        s._epoch_step_mark = len(trace.steps)
        s.epoch_index += 1
        s.epoch_elapsed = 0.0
        s.epoch_run_s = 0.0
        s.epoch_bytes = 0.0
        out.append(rec)
    return out
