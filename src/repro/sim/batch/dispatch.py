"""Population dispatch: window-end tuner proposals as ``(B,)`` arrays.

The batch engine's spans are vectorized, but every window end still ran
one python ladder per lane — generator ``send``, per-epoch noise draws,
``math.exp`` — which at B=64 is the dominant non-vectorized cost.  The
:class:`PopulationDispatcher` routes each lane once, at its first close:

* lanes whose tuner class offers :meth:`~repro.core.base.Tuner.propose_batch`
  (cd, cs, gss) join a shared :class:`~repro.core.base.TunerPopulation`
  keyed by ``(tuner class, space)`` and thereafter advance as one
  ``observe_batch`` array step per window;
* everything else — unsupported tuner classes (nm, spsa, ...),
  retry/breaker machinery, instrumented runs — keeps the scalar
  ``Engine._dispatch_epoch`` ladder, tallied once per lane under the
  ``dispatch:*`` reasons in :mod:`repro.sim.batch.eligibility`.

Bit-exactness: population lanes replicate the ladder's clean path
draw-for-draw.  The per-epoch noise/restart-jitter normals still come
from each lane's own streams in the ladder's order (sigma == 0 draws
nothing, exactly like ``lognormal_factor``); only the ``exp`` is batched
— ``np.exp`` over the collected normals equals the scalar ``np.exp``
per element.  Adoption is the ladder's clean arm with the restart
dead-time chain (``RestartModel.restart_time_s`` → rjit clamp →
``begin_restart`` cap) evaluated as elementwise float64 arrays in the
scalar operand order — population lanes carry no fault machinery, so
the clean arm is the only arm they can take.  Reordering closes and
dispatches across lanes is safe because lanes draw from independent
per-engine streams and epoch closes consume none.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.sim.batch.eligibility import (
    DISPATCH_LATE_JOIN,
    DISPATCH_UNSUPPORTED,
    dispatch_fallback_reason,
)


def take_std_normals(engine, n: int):
    """The next ``n`` standard normals of the lane's throughput-noise
    stream, from the engine's block buffer (refilled with sized draws —
    the same value sequence as ``n`` scalar calls)."""
    buf = engine._pop_z
    pos = engine._pop_zpos
    if buf is None:
        buf = engine._pop_z = engine._rng_noise.standard_normal(
            n if n > 256 else 256)
        pos = 0
    elif pos + n > buf.shape[0]:
        tail = buf[pos:]
        short = n - tail.shape[0]
        fresh = engine._rng_noise.standard_normal(
            short if short > 256 else 256)
        buf = engine._pop_z = np.concatenate([tail, fresh])
        pos = 0
    engine._pop_zpos = pos + n
    return buf[pos:pos + n]


class PopulationDispatcher:
    """Routes window-end epoch dispatches to tuner populations.

    One dispatcher serves one batch run; lane ids are the caller's
    (lane index for :class:`~repro.sim.batch.engine.BatchEngine`).
    ``fallback_reasons`` counts each scalar-routed lane exactly once —
    the per-(lane, reason) dedup the run-level fallback accounting
    needs.
    """

    def __init__(self) -> None:
        self._pops: dict = {}
        self._lane_pop: dict = {}
        self._decided: set = set()
        # Per-lane dispatch constants, resolved once at routing time:
        # (noise sigma, rjit sigma, restart base_s, per_proc_s,
        #  cmp_beta, max_contention, dead-time cap, warm factor,
        #  restart_each_epoch, warm_restart, nc_dim, np_dim, fixed_nc,
        #  fixed_np) — the attribute chains (and the ParamMap nc/np
        # method calls the adopt loop would make four times per
        # lane-epoch) are measurable at thousands of lane-epochs per
        # run.
        self._consts: dict = {}
        # Per-lane pre-drawn restart-jitter factors.  A population
        # lane's restart_jitter stream has exactly one consumer — the
        # per-epoch rjit draw — so a sized draw yields the identical
        # value sequence (the RNG-order contract) with one generator
        # call and one ``np.exp`` per refill instead of one per epoch.
        self._rjit_buf: dict = {}
        self.fallback_reasons: Counter = Counter()
        self.population_lanes = 0
        self.ladder_lanes = 0

    def dispatch(self, items) -> None:
        """Dispatch ``(lane, engine, session, rec)`` closes, one epoch
        each; population lanes advance together, the rest take the
        scalar ladder."""
        ladder = []
        grouped: dict = {}
        lane_pop = self._lane_pop
        for item in items:
            pop = lane_pop.get(item[0])
            if pop is None:
                pop = self._route(*item)
            if pop is None:
                ladder.append(item)
            else:
                grouped.setdefault(id(pop), (pop, []))[1].append(item)
        for lane, engine, session, rec in ladder:
            engine._dispatch_epoch(session, rec)
        for pop, group in grouped.values():
            self._dispatch_population(pop, group)

    # -- routing ---------------------------------------------------------

    def _route(self, lane, engine, session, rec):
        pop = self._lane_pop.get(lane)
        if pop is not None or lane in self._decided:
            return pop
        self._decided.add(lane)
        why = dispatch_fallback_reason(engine, session)
        if why is None and rec.index != 0:
            # The lane already dispatched through the scalar ladder (a
            # mid-run routing decision would have to replay its history);
            # populations only admit lanes at their very first close.
            why = DISPATCH_LATE_JOIN
        if why is None:
            tuner = session.driver.tuner
            key = (type(tuner), session.space)
            if key in self._pops:
                pop = self._pops[key]
            else:
                pop = self._pops[key] = tuner.propose_batch(session.space)
            if pop is not None:
                cur = pop.add_lane(lane, tuner, rec.params)
                if cur is None:
                    why = DISPATCH_UNSUPPORTED
                elif tuple(cur) != tuple(rec.params):
                    # Population primed elsewhere than the session runs:
                    # never expected (both prime via fBnd), but a scalar
                    # fallback is always correct.
                    pop.detach(lane)
                    why = DISPATCH_UNSUPPORTED
            else:
                why = DISPATCH_UNSUPPORTED
        if why is not None:
            self.fallback_reasons[why] += 1
            self.ladder_lanes += 1
            return None
        self._lane_pop[lane] = pop
        self.population_lanes += 1
        engine._pop_buffered = True
        restart = engine.client.restart
        pm = session.param_map
        self._consts[lane] = (
            engine.config.noise_sigma_epoch,
            restart.jitter_sigma,
            restart.base_s,
            restart.per_proc_s,
            restart.cmp_beta,
            restart.max_contention,
            restart.max_fraction_of_epoch * session.spec.epoch_s,
            restart.warm_np_factor,
            session.restart_each_epoch,
            session.warm_restart,
            pm.nc_dim,
            pm.np_dim,
            pm.fixed_nc,
            pm.fixed_np,
        )
        self._rjit_buf[lane] = []
        return pop

    # -- the batched clean path ------------------------------------------

    def _dispatch_population(self, pop, items) -> None:
        n = len(items)
        noises = [1.0] * n
        rjits = [1.0] * n
        consts = self._consts
        rjit_buf = self._rjit_buf
        zs: list = []  # raw standard normals, one per drawing lane
        sigs: list[float] = []
        slots: list[int] = []  # lane index j of each noise draw
        cs: list = []  # each lane's consts, reused by the adopt loop
        for j, (lane, engine, session, rec) in enumerate(items):
            if engine._jit_pos < len(engine._jit_buf):
                raise RuntimeError(
                    "epoch dispatched with an undrained jitter batch: "
                    "the fast path's draw prediction desynchronized "
                    "from the step loop"
                )
            c = consts[lane]
            cs.append(c)
            sig_n, sig_r = c[0], c[1]
            if sig_n > 0.0:
                # The noise stream is shared with the span loop's step
                # jitter; both sides consume the lane's block buffer
                # (inlined fast path — one epoch draw per lane-window).
                buf = engine._pop_z
                pos = engine._pop_zpos
                if buf is not None and pos < buf.shape[0]:
                    z = buf[pos]
                    engine._pop_zpos = pos + 1
                else:
                    z = take_std_normals(engine, 1)[0]
                zs.append(z)
                sigs.append(sig_n)
                slots.append(j)
            if sig_r > 0.0:
                buf = rjit_buf[lane]
                if not buf:
                    z = engine._rng_rjit.normal(
                        -0.5 * sig_r * sig_r, sig_r, size=64
                    )
                    buf = np.exp(z).tolist()
                    buf.reverse()  # pop() below then consumes in order
                    rjit_buf[lane] = buf
                rjits[j] = buf.pop()
        if zs:
            # loc + sigma*z then one exp over every lane's epoch draw:
            # elementwise float64 in the scalar operand order, so each
            # factor is bitwise lognormal_factor's scalar np.exp.
            sig = np.asarray(sigs)
            factors = np.exp(
                (-0.5) * sig * sig + sig * np.asarray(zs)).tolist()
            for value, j in zip(factors, slots):
                noises[j] = value

        lanes = [item[0] for item in items]
        observed = [item[3].observed for item in items]
        proposals = pop.observe_batch(lanes, observed)
        # The ladder's clean-arm adopt, with the restart dead-time chain
        # batched: populations only hold fault-free lanes, so proposals
        # are in-space fBnd points and the clean arm is the only arm.
        rows = []  # lanes whose params changed (or always-restart lanes)
        row_nc: list[int] = []
        for j, (lane, engine, session, rec) in enumerate(items):
            params = tuple(proposals[j])
            c = cs[j]
            ncd = c[10]
            old = session.params
            old_nc = old[ncd] if ncd is not None else c[12]
            new_nc = params[ncd] if ncd is not None else c[12]
            session.params = params
            session.noise_factor = noises[j]
            npd = c[11]
            if (c[8] or new_nc != old_nc
                    or (npd is not None and params[npd] != old[npd])):
                warm = c[9] and new_nc == old_nc
                rows.append((j, session, engine, warm, c))
                row_nc.append(new_nc)
        if not rows:
            return
        # Elementwise float64, scalar operand order throughout:
        # base = base_s + per_proc_s * nc;
        # contention = min(1 + beta*g/(1-g), max_contention);
        # t = base * contention (* warm factor when warm);
        # dead = min(min(t, cap) * rjit, cap); begin_restart caps again.
        C = np.asarray([r[4][2:8] for r in rows])
        g = np.asarray([r[2]._last_cmp_frac for r in rows])
        warm_mask = np.asarray([r[3] for r in rows])
        rj = np.asarray([rjits[r[0]] for r in rows])
        base = C[:, 0] + C[:, 1] * np.asarray(row_nc, dtype=np.float64)
        cont = np.minimum(1.0 + C[:, 2] * g / (1.0 - g), C[:, 3])
        t = base * cont
        t = np.where(warm_mask, t * C[:, 5], t)
        cap = C[:, 4]
        dead = np.minimum(np.minimum(t, cap) * rj, cap)
        for (j, session, engine, warm, c), d in zip(rows, dead.tolist()):
            if d > 0.0:
                session.restart_remaining = d
                session.time_since_start = 0.0
