"""Trace persistence: JSON round-trip and CSV export.

Long parameter studies want to separate *running* experiments from
*analyzing* them.  Traces serialize losslessly to JSON (both step and
epoch records) and export to flat CSV for spreadsheet/pandas analysis.

Crash safety: every file written here goes through
:func:`atomic_write_text` — the text lands in a temporary file in the
target directory, is fsynced, and is atomically renamed over the
destination, so a process killed mid-write can never leave a
truncated or corrupt trace behind.  A file that *is* damaged some other
way (partial copy, disk fault) raises :class:`CorruptTraceError` naming
the file and byte offset instead of a bare ``json.JSONDecodeError``.
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
from pathlib import Path

from repro.sim.trace import EpochRecord, StepRecord, Trace

#: Format tag written into every file, checked on load.
FORMAT_VERSION = 1


class CorruptTraceError(ValueError):
    """A trace/journal file is truncated or not valid JSON.

    Carries the offending file and the byte offset where decoding
    failed, so a damaged file in a long campaign can be located and
    triaged without a debugger.
    """

    def __init__(self, path: str | Path, offset: int, reason: str) -> None:
        self.path = str(path)
        self.offset = int(offset)
        self.reason = reason
        super().__init__(
            f"corrupt trace data in {self.path!s} at byte offset "
            f"{self.offset}: {reason}"
        )


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file is created in the *target* directory so the final
    rename never crosses a filesystem boundary; the data is fsynced
    before the rename, so after a crash the destination holds either the
    old content or the complete new content — never a torn write.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as f:
            f.write(text)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# -- record <-> dict helpers (shared with the checkpoint journal) ----------


def step_to_dict(s: StepRecord) -> dict:
    return {
        "time": s.time,
        "rate": s.rate,
        "restarting": s.restarting,
        "bytes_moved": s.bytes_moved,
    }


def step_from_dict(d: dict) -> StepRecord:
    return StepRecord(
        time=float(d["time"]),
        rate=float(d["rate"]),
        restarting=bool(d["restarting"]),
        bytes_moved=float(d["bytes_moved"]),
    )


def epoch_to_dict(e: EpochRecord) -> dict:
    return {
        "index": e.index,
        "start": e.start,
        "duration": e.duration,
        "params": list(e.params),
        "observed": e.observed,
        "best_case": e.best_case,
        "bytes_moved": e.bytes_moved,
        "faulted": e.faulted,
        "fault": e.fault,
        "retries": e.retries,
        "breaker": e.breaker,
        "tuned": e.tuned,
    }


def epoch_from_dict(e: dict) -> EpochRecord:
    fault = e.get("fault")
    return EpochRecord(
        index=int(e["index"]),
        start=float(e["start"]),
        duration=float(e["duration"]),
        params=tuple(int(v) for v in e["params"]),
        observed=float(e["observed"]),
        best_case=float(e["best_case"]),
        bytes_moved=float(e["bytes_moved"]),
        # Fault/recovery fields appeared after format 1 froze;
        # absent keys mean a clean pre-fault trace.
        faulted=bool(e.get("faulted", False)),
        fault=None if fault is None else str(fault),
        retries=int(e.get("retries", 0)),
        breaker=str(e.get("breaker", "closed")),
        tuned=bool(e.get("tuned", True)),
    )


def trace_to_dict(trace: Trace) -> dict:
    """Plain-dict representation (JSON-ready)."""
    return {
        "format": FORMAT_VERSION,
        "label": trace.label,
        "steps": [step_to_dict(s) for s in trace.steps],
        "epochs": [epoch_to_dict(e) for e in trace.epochs],
    }


def trace_from_dict(data: dict) -> Trace:
    """Inverse of :func:`trace_to_dict`, with format validation."""
    if not isinstance(data, dict):
        raise ValueError("trace data must be a dict")
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    trace = Trace(label=data.get("label", ""))
    for s in data.get("steps", []):
        trace.add_step(step_from_dict(s))
    for e in data.get("epochs", []):
        trace.add_epoch(epoch_from_dict(e))
    return trace


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace as JSON (atomically; see :func:`atomic_write_text`)."""
    atomic_write_text(path, json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> Trace:
    """Read a JSON trace written by :func:`save_trace`.

    Raises :class:`CorruptTraceError` (with the file and byte offset)
    when the file is truncated or not valid JSON.
    """
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CorruptTraceError(path, exc.pos, exc.msg) from exc
    return trace_from_dict(data)


def epochs_to_csv(trace: Trace, path: str | Path | None = None) -> str:
    """Export epoch records as CSV; returns the text (and writes it
    atomically when ``path`` is given).

    Parameter columns are expanded as ``param0, param1, ...`` so mixed
    1-D/2-D traces stay machine-readable.
    """
    if not trace.epochs:
        raise ValueError("trace has no epochs")
    ndim = len(trace.epochs[0].params)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["index", "start_s", "duration_s"]
        + [f"param{i}" for i in range(ndim)]
        + ["observed_mbps", "best_case_mbps", "bytes_moved",
           "faulted", "fault", "retries", "breaker", "tuned"]
    )
    for e in trace.epochs:
        if len(e.params) != ndim:
            raise ValueError("inconsistent parameter dimensionality")
        writer.writerow(
            [e.index, e.start, e.duration, *e.params,
             e.observed, e.best_case, e.bytes_moved,
             int(e.faulted), e.fault or "", e.retries, e.breaker,
             int(e.tuned)]
        )
    text = buf.getvalue()
    if path is not None:
        atomic_write_text(path, text)
    return text
