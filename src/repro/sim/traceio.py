"""Trace persistence: JSON round-trip and CSV export.

Long parameter studies want to separate *running* experiments from
*analyzing* them.  Traces serialize losslessly to JSON (both step and
epoch records) and export to flat CSV for spreadsheet/pandas analysis.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from repro.sim.trace import EpochRecord, StepRecord, Trace

#: Format tag written into every file, checked on load.
FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> dict:
    """Plain-dict representation (JSON-ready)."""
    return {
        "format": FORMAT_VERSION,
        "label": trace.label,
        "steps": [
            {
                "time": s.time,
                "rate": s.rate,
                "restarting": s.restarting,
                "bytes_moved": s.bytes_moved,
            }
            for s in trace.steps
        ],
        "epochs": [
            {
                "index": e.index,
                "start": e.start,
                "duration": e.duration,
                "params": list(e.params),
                "observed": e.observed,
                "best_case": e.best_case,
                "bytes_moved": e.bytes_moved,
                "faulted": e.faulted,
                "fault": e.fault,
                "retries": e.retries,
                "breaker": e.breaker,
                "tuned": e.tuned,
            }
            for e in trace.epochs
        ],
    }


def trace_from_dict(data: dict) -> Trace:
    """Inverse of :func:`trace_to_dict`, with format validation."""
    if not isinstance(data, dict):
        raise ValueError("trace data must be a dict")
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    trace = Trace(label=data.get("label", ""))
    for s in data.get("steps", []):
        trace.add_step(
            StepRecord(
                time=float(s["time"]),
                rate=float(s["rate"]),
                restarting=bool(s["restarting"]),
                bytes_moved=float(s["bytes_moved"]),
            )
        )
    for e in data.get("epochs", []):
        fault = e.get("fault")
        trace.add_epoch(
            EpochRecord(
                index=int(e["index"]),
                start=float(e["start"]),
                duration=float(e["duration"]),
                params=tuple(int(v) for v in e["params"]),
                observed=float(e["observed"]),
                best_case=float(e["best_case"]),
                bytes_moved=float(e["bytes_moved"]),
                # Fault/recovery fields appeared after format 1 froze;
                # absent keys mean a clean pre-fault trace.
                faulted=bool(e.get("faulted", False)),
                fault=None if fault is None else str(fault),
                retries=int(e.get("retries", 0)),
                breaker=str(e.get("breaker", "closed")),
                tuned=bool(e.get("tuned", True)),
            )
        )
    return trace


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write a trace as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)))


def load_trace(path: str | Path) -> Trace:
    """Read a JSON trace written by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def epochs_to_csv(trace: Trace, path: str | Path | None = None) -> str:
    """Export epoch records as CSV; returns the text (and writes it when
    ``path`` is given).

    Parameter columns are expanded as ``param0, param1, ...`` so mixed
    1-D/2-D traces stay machine-readable.
    """
    if not trace.epochs:
        raise ValueError("trace has no epochs")
    ndim = len(trace.epochs[0].params)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        ["index", "start_s", "duration_s"]
        + [f"param{i}" for i in range(ndim)]
        + ["observed_mbps", "best_case_mbps", "bytes_moved",
           "faulted", "fault", "retries", "breaker", "tuned"]
    )
    for e in trace.epochs:
        if len(e.params) != ndim:
            raise ValueError("inconsistent parameter dimensionality")
        writer.writerow(
            [e.index, e.start, e.duration, *e.params,
             e.observed, e.best_case, e.bytes_moved,
             int(e.faulted), e.fault or "", e.retries, e.breaker,
             int(e.tuned)]
        )
    text = buf.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
