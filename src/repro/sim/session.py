"""Tuner-driven transfer sessions.

A :class:`TransferSession` binds together one transfer
(:class:`~repro.gridftp.transfer.TransferSpec`), the tuner controlling it,
the mapping from tuner parameters to ``(nc, np)``, and the per-epoch
runtime state the engine advances (restart window, ramp clock, epoch
accumulators, trace).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.core.base import Tuner, TunerDriver
from repro.core.params import ParamSpace
from repro.faults.breaker import OPEN as OPEN_STATE
from repro.faults.breaker import CircuitBreaker
from repro.faults.events import OBS_LOSS, STREAM_CRASH
from repro.faults.retry import RetryPolicy, RetryState
from repro.faults.schedule import FaultSchedule
from repro.gridftp.globus import FaultModel
from repro.gridftp.transfer import TransferSpec, TransferState
from repro.sim.trace import EpochRecord, StepRecord, Trace
from repro.sim.traceio import step_from_dict, step_to_dict


@dataclass(frozen=True)
class ParamMap:
    """How a tuner's parameter vector maps to the tool's (nc, np, pp).

    Each of nc/np/pp either comes from a dimension of the tuned vector or
    is fixed.  The paper's §IV-A tunes nc with np fixed at 8; §IV-B tunes
    nc and np; the disk-to-disk extension adds pipelining depth pp.
    """

    nc_dim: int | None = 0
    np_dim: int | None = None
    pp_dim: int | None = None
    fixed_nc: int = 1
    fixed_np: int = 1
    fixed_pp: int = 1

    def __post_init__(self) -> None:
        if self.nc_dim is None and self.fixed_nc < 1:
            raise ValueError("fixed_nc must be >= 1")
        if self.np_dim is None and self.fixed_np < 1:
            raise ValueError("fixed_np must be >= 1")
        if self.pp_dim is None and self.fixed_pp < 1:
            raise ValueError("fixed_pp must be >= 1")
        dims = [d for d in (self.nc_dim, self.np_dim, self.pp_dim)
                if d is not None]
        if len(set(dims)) != len(dims):
            raise ValueError("nc/np/pp cannot share a dimension")

    @classmethod
    def nc_only(cls, fixed_np: int = 8) -> "ParamMap":
        """Tune concurrency, parallelism fixed (paper §IV-A default np=8)."""
        return cls(nc_dim=0, np_dim=None, fixed_np=fixed_np)

    @classmethod
    def nc_np(cls) -> "ParamMap":
        """Tune concurrency (dim 0) and parallelism (dim 1), paper §IV-B."""
        return cls(nc_dim=0, np_dim=1)

    @classmethod
    def nc_np_pp(cls) -> "ParamMap":
        """Tune concurrency, parallelism, and pipelining (disk extension)."""
        return cls(nc_dim=0, np_dim=1, pp_dim=2)

    def nc(self, x: tuple[int, ...]) -> int:
        return x[self.nc_dim] if self.nc_dim is not None else self.fixed_nc

    def np(self, x: tuple[int, ...]) -> int:
        return x[self.np_dim] if self.np_dim is not None else self.fixed_np

    def pp(self, x: tuple[int, ...]) -> int:
        return x[self.pp_dim] if self.pp_dim is not None else self.fixed_pp


class TransferSession:
    """Runtime state of one transfer under tuner control.

    Parameters
    ----------
    spec:
        The transfer job (name, path, size/duration, epoch length).
    tuner:
        Direct-search method (or ``StaticTuner`` for the default baseline).
        ``None`` when the session is driven by a joint controller.
    space, x0:
        The tuned parameter domain and starting point.
    param_map:
        Mapping from tuned vector to (nc, np).
    restart_each_epoch:
        True for the paper's tuners (the tool is relaunched every control
        epoch); False for ``default`` which launches once and runs.
    warm_restart:
        Extension (future work 2): reuse processes when only np changes.
    fault_model:
        Optional legacy per-epoch Bernoulli fault injection (deprecated;
        use ``fault_schedule``).
    fault_schedule:
        Optional deterministic fault campaign (:mod:`repro.faults`):
        crashes, aborts, blackouts, link degradation, observation loss
        and load spikes, indexed by control epoch.
    retry_policy:
        How faulted epochs are retried: backoff dead time and retry
        budgets.  A session abort with no retry budget left ends the
        transfer (``failed`` is set).
    breaker:
        Optional circuit breaker: after repeated faulted epochs the
        session is pinned to the safe Globus default and the tuner is
        bypassed until a probe epoch succeeds.
    disk_cap_fn:
        Optional extra rate cap (MB/s) as a function of (nc, np, pp),
        used by the disk-to-disk extension.
    """

    def __init__(
        self,
        spec: TransferSpec,
        tuner: Tuner | None,
        space: ParamSpace,
        x0: tuple[int, ...],
        *,
        param_map: ParamMap | None = None,
        restart_each_epoch: bool = True,
        warm_restart: bool = False,
        fault_model: FaultModel | None = None,
        fault_schedule: FaultSchedule | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        disk_cap_fn: Callable[[int, int, int], float] | None = None,
    ) -> None:
        self.spec = spec
        self.space = space
        self.param_map = param_map if param_map is not None else ParamMap()
        self.restart_each_epoch = restart_each_epoch
        self.warm_restart = warm_restart
        self.fault_model = fault_model
        self.fault_schedule = fault_schedule
        self.retry_policy = retry_policy
        self.retry_state: RetryState | None = (
            retry_policy.start() if retry_policy is not None else None
        )
        self.breaker = breaker
        self.disk_cap_fn = disk_cap_fn

        #: Kept so checkpoint/resume can rebuild a fresh driver by
        #: replaying journaled observations (seeded tuners build their
        #: RNG inside ``propose``, so a re-``start`` replays exactly).
        self.tuner = tuner
        self.x0 = tuple(x0)
        self.driver: TunerDriver | None = (
            tuner.start(x0, space) if tuner is not None else None
        )
        self.params: tuple[int, ...] = (
            self.driver.current if self.driver is not None else space.fbnd(x0)
        )
        self._check_dims()

        self.state = TransferState(spec)
        self.trace = Trace(label=spec.name)

        # Restart / ramp clocks (seconds).
        self.restart_remaining: float = 0.0
        self.time_since_start: float = 0.0

        # Epoch accumulators.
        self.epoch_index: int = 0
        self.epoch_elapsed: float = 0.0
        self.epoch_run_s: float = 0.0
        self.epoch_bytes: float = 0.0
        self.noise_factor: float = 1.0

        #: Set when a session abort exhausted the retry budget.
        self.failed: bool = False

        #: Step records belonging to the most recently closed epoch (for
        #: the checkpoint journal); index into ``trace.steps`` where the
        #: current (partial) epoch begins.
        self.last_epoch_steps: list[StepRecord] = []
        self._epoch_step_mark: int = 0

    def _check_dims(self) -> None:
        for dim in (self.param_map.nc_dim, self.param_map.np_dim,
                    self.param_map.pp_dim):
            if dim is not None and not 0 <= dim < self.space.ndim:
                raise ValueError(
                    f"param_map dimension {dim} outside the {self.space.ndim}"
                    "-dimensional space"
                )

    # -- derived quantities ------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def nc(self) -> int:
        return self.param_map.nc(self.params)

    @property
    def np_(self) -> int:
        return self.param_map.np(self.params)

    @property
    def pp(self) -> int:
        return self.param_map.pp(self.params)

    @property
    def streams(self) -> int:
        return self.nc * self.np_

    @property
    def done(self) -> bool:
        return self.failed or self.state.done

    @property
    def restarting(self) -> bool:
        return self.restart_remaining > 0.0

    def disk_cap(self) -> float:
        """Extra cap from the disk model, or +inf when memory-to-memory."""
        if self.disk_cap_fn is None:
            return math.inf
        return self.disk_cap_fn(self.nc, self.np_, self.pp)

    # -- fault injection ---------------------------------------------------

    def epoch_target_s(self) -> float:
        """Length of the current control epoch (the first one may carry a
        phase offset)."""
        target = self.spec.epoch_s
        if self.epoch_index == 0:
            target += self.spec.epoch_offset_s
        return target

    def fault_rate_factor(self) -> float:
        """Throughput multiplier the fault schedule imposes on the current
        step: 0 during blackouts/aborts and after a stream crash's hit
        point, ``1 - severity`` on degraded links, ``1/(1+severity)``
        during load spikes, 1 otherwise."""
        if self.fault_schedule is None:
            return 1.0
        idx = self.epoch_index
        factor = self.fault_schedule.rate_factor(idx)
        hard = self.fault_schedule.hard_fault_at(idx)
        if hard is not None:
            if hard.kind == STREAM_CRASH:
                frac = self.epoch_elapsed / self.epoch_target_s()
                if frac >= hard.at_fraction - 1e-12:
                    factor = 0.0
            else:
                factor = 0.0
        return factor

    def epoch_fault_kind(self) -> str | None:
        """Fault affecting the current epoch: a hard kind, ``"obs-loss"``
        when only the measurement is dropped, else None."""
        if self.fault_schedule is None:
            return None
        hard = self.fault_schedule.hard_fault_at(self.epoch_index)
        if hard is not None:
            return hard.kind
        if self.fault_schedule.observation_lost(self.epoch_index):
            return OBS_LOSS
        return None

    def fallback_params(self) -> tuple[int, ...]:
        """The breaker's safe default mapped into this session's space
        (dimensions the map fixes are left at their current value)."""
        if self.breaker is None:
            raise RuntimeError("session has no circuit breaker")
        params = list(self.params)
        if self.param_map.nc_dim is not None:
            params[self.param_map.nc_dim] = self.breaker.fallback_nc
        if self.param_map.np_dim is not None:
            params[self.param_map.np_dim] = self.breaker.fallback_np
        return self.space.fbnd(tuple(params))

    # -- step/epoch bookkeeping (driven by the engine) ----------------------

    def record_step(self, time: float, rate: float, bytes_moved: float) -> None:
        self.trace.add_step(
            StepRecord(
                time=time,
                rate=rate,
                restarting=self.restarting,
                bytes_moved=bytes_moved,
            )
        )

    def close_epoch(self, start_time: float) -> EpochRecord:
        """Summarize the finished epoch into the trace and return it."""
        if self.epoch_elapsed <= 0:
            raise ValueError("cannot close an empty epoch")
        mb = self.epoch_bytes / 1e6
        observed = mb / self.epoch_elapsed
        best = mb / self.epoch_run_s if self.epoch_run_s > 0 else 0.0
        fault = self.epoch_fault_kind()
        faulted = fault is not None and fault != OBS_LOSS
        breaker_state = self.breaker.state if self.breaker is not None else "closed"
        rec = EpochRecord(
            index=self.epoch_index,
            start=start_time,
            duration=self.epoch_elapsed,
            params=self.params,
            observed=observed,
            best_case=best,
            bytes_moved=self.epoch_bytes,
            faulted=faulted,
            fault=fault,
            retries=(self.retry_state.total_retries
                     if self.retry_state is not None else 0),
            breaker=breaker_state,
            # A clean epoch is fed to the tuner unless the breaker is
            # open (fallback throughput must not steer the search); a
            # clean half-open probe *is* observed.
            tuned=fault is None and breaker_state != OPEN_STATE,
        )
        self.trace.add_epoch(rec)
        self.last_epoch_steps = self.trace.steps[self._epoch_step_mark:]
        self._epoch_step_mark = len(self.trace.steps)
        self.epoch_index += 1
        self.epoch_elapsed = 0.0
        self.epoch_run_s = 0.0
        self.epoch_bytes = 0.0
        return rec

    def apply_params(self, new_params: tuple[int, ...]) -> tuple[bool, bool]:
        """Adopt the next epoch's parameters.

        Returns ``(needs_restart, warm)``: whether the tool must be
        relaunched, and whether the relaunch may reuse processes (warm).
        """
        if not self.space.contains(new_params):
            raise ValueError(
                f"tuner proposed {new_params} outside the domain"
            )
        old_nc, old_np = self.nc, self.np_
        self.params = tuple(new_params)
        changed = (self.nc, self.np_) != (old_nc, old_np)
        if self.restart_each_epoch or changed:
            warm = self.warm_restart and self.nc == old_nc
            return True, warm
        return False, False

    def begin_restart(self, dead_time_s: float) -> None:
        if dead_time_s < 0:
            raise ValueError("dead_time_s must be non-negative")
        self.restart_remaining = dead_time_s
        self.time_since_start = 0.0

    # -- checkpoint support --------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready runtime state (everything the engine mutates that a
        replayed tuner driver cannot reconstruct).

        ``partial_steps`` carries the step records of the *current*
        (unfinished) epoch, so a resumed multi-session run rebuilds even
        mid-epoch traces bit-identically.  Tuner state is deliberately
        absent — it is rebuilt by observation replay
        (:mod:`repro.checkpoint.replay`).
        """
        return {
            "params": list(self.params),
            "epoch_index": self.epoch_index,
            "epoch_elapsed": self.epoch_elapsed,
            "epoch_run_s": self.epoch_run_s,
            "epoch_bytes": self.epoch_bytes,
            "noise_factor": self.noise_factor,
            "restart_remaining": self.restart_remaining,
            "time_since_start": self.time_since_start,
            "failed": self.failed,
            "transfer": self.state.snapshot(),
            "partial_steps": [
                step_to_dict(s)
                for s in self.trace.steps[self._epoch_step_mark:]
            ],
            "retry": (self.retry_state.snapshot()
                      if self.retry_state is not None else None),
            "breaker": (self.breaker.snapshot()
                        if self.breaker is not None else None),
        }

    def restore_snapshot(
        self,
        state: dict,
        epochs: "list[tuple[EpochRecord, list[StepRecord]]]",
    ) -> None:
        """Restore runtime state and rebuild the trace from journaled
        epochs (each with its step records) plus the snapshot's
        partial-epoch steps.

        The tuner driver is *not* restored here — resume replaces it
        with a replayed one first (see :mod:`repro.checkpoint.resume`).
        """
        if epochs and epochs[-1][0].index + 1 != int(state["epoch_index"]):
            raise ValueError(
                f"snapshot epoch_index {state['epoch_index']} does not "
                f"follow the last journaled epoch {epochs[-1][0].index}"
            )
        self.params = tuple(int(v) for v in state["params"])
        self.epoch_index = int(state["epoch_index"])
        self.epoch_elapsed = float(state["epoch_elapsed"])
        self.epoch_run_s = float(state["epoch_run_s"])
        self.epoch_bytes = float(state["epoch_bytes"])
        self.noise_factor = float(state["noise_factor"])
        self.restart_remaining = float(state["restart_remaining"])
        self.time_since_start = float(state["time_since_start"])
        self.failed = bool(state["failed"])
        self.state.restore(state["transfer"])

        if (state["retry"] is None) != (self.retry_state is None):
            raise ValueError(
                "retry-policy presence differs between snapshot and session"
            )
        if self.retry_state is not None:
            self.retry_state.restore(state["retry"])
        if (state["breaker"] is None) != (self.breaker is None):
            raise ValueError(
                "breaker presence differs between snapshot and session"
            )
        if self.breaker is not None:
            self.breaker.restore(state["breaker"])

        self.trace = Trace(label=self.spec.name)
        for rec, steps in epochs:
            for s in steps:
                self.trace.add_step(s)
            self.trace.add_epoch(rec)
        self._epoch_step_mark = len(self.trace.steps)
        self.last_epoch_steps = (
            epochs[-1][1] if epochs else []
        )
        for s in state["partial_steps"]:
            self.trace.add_step(step_from_dict(s))
