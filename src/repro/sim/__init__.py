"""Simulation kernel: clock, seeded RNG streams, trace recording, engine.

The kernel advances a fluid network + CPU model in fixed time steps and
drives one or more tuner-controlled transfer sessions at control-epoch
granularity.
"""

from repro.sim.clock import SimClock
from repro.sim.rng import RngStreams
from repro.sim.trace import EpochRecord, StepRecord, Trace
from repro.sim.session import TransferSession
from repro.sim.engine import Engine, EngineConfig

__all__ = [
    "SimClock",
    "RngStreams",
    "Trace",
    "StepRecord",
    "EpochRecord",
    "TransferSession",
    "Engine",
    "EngineConfig",
]
