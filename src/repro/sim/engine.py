"""The fluid simulation engine.

Advances all transfer sessions, external load, CPU scheduling, and network
allocation in fixed time steps, and drives each session's tuner at control
epoch boundaries.  The per-step pipeline is:

1. look up the external load from the schedule;
2. divide the source host's cores among transfer processes, dgemm threads
   and the external transfer (:func:`repro.endpoint.cpu.fair_shares`);
3. compute per-path effective loss from the total stream count, build one
   :class:`~repro.net.flows.FlowGroup` per running transfer (group cap =
   CPU-limited rate; per-stream cap = TCP model), and allocate bandwidth
   max-min fairly (:func:`repro.net.fairshare.max_min_fair_allocation`);
4. scale by the context-switch efficiency and the session's noise factors,
   apply the slow-start ramp and restart dead time, move bytes;
5. at each session's epoch boundary, report the epoch throughput to its
   tuner (or joint controller), adopt the proposed parameters, and charge
   the restart cost.

Fig. 11's coupled transfers need no special handling: two sessions whose
paths share the source NIC link compete in step 3 automatically.

Steps 1-3 form the *allocation phase*: a pure function of the external
load and each session's (done, restarting, params) state, which only
changes at control-epoch boundaries, load-schedule transitions, fault
events and session start/stop.  With ``EngineConfig.fast_path`` (the
default) the engine caches the allocation phase on exactly that
change-point key and batches the per-step lognormal jitter draws into
one vectorized draw per epoch span, consumed in the order the scalar
path would draw them — fast-path runs are bit-identical to
``fast_path=False`` runs (see DESIGN.md §10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.aggregate import JointTuner
from repro.core.base import TunerDriver
from repro.endpoint.cpu import CpuTask, context_switch_efficiency, fair_shares
from repro.endpoint.host import HostSpec
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.faults.breaker import OPEN
from repro.faults.events import OBS_LOSS, SESSION_ABORT
from repro.gridftp.client import ClientModel
from repro.net.fairshare import max_min_fair_allocation
from repro.net.flows import FlowGroup
from repro.net.topology import Topology
from repro.obs.events import (
    BreakerTransition,
    EpochStart,
    RetryAttempt,
    SnapshotWritten,
    TunerAccept,
    TunerProposal,
    TunerReject,
)
from repro.obs.instrument import publish_epoch_record
from repro.sim.clock import SimClock
from repro.noise import lognormal_factor
from repro.sim.rng import RngStreams
from repro.sim.session import TransferSession
from repro.sim.trace import EpochRecord, StepRecord, Trace
from repro.units import MB

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.checkpoint.journal import JournalWriter
    from repro.obs.instrument import Instrumentation

#: Reserved flow-group / CPU-task names for external load.
EXT_CMP = "ext.cmp"
EXT_TFR = "ext.tfr"

#: Shared empty jitter buffer (an exhausted batch and "no batch" are the
#: same state: fall back to scalar draws).
_NO_JITTER = np.empty(0)


@dataclass(frozen=True)
class EngineConfig:
    """Simulation-wide knobs.

    Parameters
    ----------
    dt:
        Step length in seconds.
    seed:
        Root RNG seed; runs with equal seeds are bit-identical.
    noise_sigma_epoch:
        Lognormal sigma of the per-session, per-epoch throughput factor
        (slow network weather the tuners must tolerate).
    noise_sigma_step:
        Lognormal sigma of the per-step jitter on top.
    ext_tfr_path:
        Path the external transfer uses; defaults to the first session's.
    ext_streams_per_proc:
        The external transfer runs ``max(1, ext_tfr // this)`` processes
        (a realistic globus-url-copy invocation for large stream counts).
    fast_path:
        Cache the allocation phase between change points and batch the
        per-step jitter draws (bit-identical to the reference path, just
        faster).  ``False`` recomputes everything every step — the
        reference the equivalence tests and the perf gate compare
        against.
    """

    dt: float = 1.0
    seed: int = 0
    noise_sigma_epoch: float = 0.03
    noise_sigma_step: float = 0.02
    ext_tfr_path: str | None = None
    ext_streams_per_proc: int = 16
    fast_path: bool = True

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.noise_sigma_epoch < 0 or self.noise_sigma_step < 0:
            raise ValueError("noise sigmas must be non-negative")
        if self.ext_streams_per_proc < 1:
            raise ValueError("ext_streams_per_proc must be >= 1")


class JointController:
    """Drives several sessions from one joint direct-search instance.

    The controller waits until *all* its sessions closed their (aligned)
    epochs, feeds the **sum** of their observed throughputs to the joint
    tuner, and splits the proposal back per session.
    """

    def __init__(
        self,
        joint: JointTuner,
        session_names: list[str],
        x0: tuple[int, ...],
    ) -> None:
        if len(session_names) != len(joint.subspaces):
            raise ValueError("one session per subspace required")
        if len(set(session_names)) != len(session_names):
            raise ValueError(f"duplicate session names: {session_names}")
        self.joint = joint
        self.session_names = list(session_names)
        self.driver = TunerDriver(joint.propose(
            joint.joint_space.fbnd(x0), joint.joint_space
        ))
        self._pending: dict[str, float] = {}
        #: Optional metrics registry: when set, each completed joint
        #: round records the objective the tuner saw (telemetry only).
        self.metrics = None

    def initial_params(self) -> dict[str, tuple[int, ...]]:
        parts = self.joint.split(self.driver.current)
        return dict(zip(self.session_names, parts))

    def observe(
        self, name: str, observed: float
    ) -> dict[str, tuple[int, ...]] | None:
        """Report one session's epoch; returns new params for all sessions
        once every session has reported, else ``None``."""
        if name not in self.session_names:
            raise KeyError(f"session {name!r} not under this controller")
        if name in self._pending:
            raise RuntimeError(f"session {name!r} reported twice this epoch")
        self._pending[name] = observed
        if len(self._pending) < len(self.session_names):
            return None
        total = sum(self._pending.values())
        self._pending.clear()
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_joint_objective_mbps",
                sessions="+".join(self.session_names),
            ).set(total)
        parts = self.joint.split(self.driver.observe(total))
        return dict(zip(self.session_names, parts))


@dataclass
class Engine:
    """Coupled network + CPU + tuner simulation.

    With a ``journal``, every closed control epoch (and a full state
    snapshot after each epoch-dispatch round) is fsynced to an
    append-only JSONL file, making the run crash-safe: a killed process
    resumes from the last complete epoch bit-identically
    (:mod:`repro.checkpoint`).
    """

    topology: Topology
    host: HostSpec
    sessions: list[TransferSession]
    schedule: LoadSchedule = field(
        default_factory=lambda: LoadSchedule.constant(ExternalLoad())
    )
    controllers: list[JointController] = field(default_factory=list)
    client: ClientModel = field(default_factory=ClientModel)
    config: EngineConfig = field(default_factory=EngineConfig)
    journal: "JournalWriter | None" = None
    obs: "Instrumentation | None" = None
    #: External epoch dispatcher for sessions that carry neither a tuner
    #: driver nor a joint controller: called once per closed epoch with
    #: ``(session, record)`` and returns the next parameters (or ``None``
    #: to hold the current ones).  The return value is only honored on
    #: clean, tuned epochs — faulted and obs-lost epochs follow the same
    #: recovery ladder as driver-owned sessions, so an externally driven
    #: session journals/replays identically.  This is what lets a fleet
    #: service advance many tenant sessions on one shared substrate while
    #: owning the tuner (isolation, deadlines, supervision) itself.
    epoch_sink: "Callable[[TransferSession, EpochRecord], tuple[int, ...] | None] | None" = None

    def __post_init__(self) -> None:
        if self.journal is not None and self.controllers:
            # A joint controller's driver state spans sessions; replay
            # reconstruction is per-session, so journaling is limited to
            # independently tuned sessions for now.
            raise ValueError(
                "journaling jointly controlled sessions is not supported"
            )
        names = [s.name for s in self.sessions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate session names: {names}")
        if EXT_CMP in names or EXT_TFR in names:
            raise ValueError(
                f"session names {EXT_CMP!r}/{EXT_TFR!r} are reserved"
            )
        self._by_name = {s.name: s for s in self.sessions}
        for s in self.sessions:
            self.topology.path(s.spec.path_name)  # validates existence

        self._controller_of: dict[str, JointController] = {}
        for ctl in self.controllers:
            for name in ctl.session_names:
                if name not in self._by_name:
                    raise ValueError(f"controller references unknown {name!r}")
                if self._by_name[name].driver is not None:
                    raise ValueError(
                        f"session {name!r} has its own tuner and a controller"
                    )
                if name in self._controller_of:
                    raise ValueError(f"session {name!r} has two controllers")
                if (self._by_name[name].fault_schedule is not None
                        or self._by_name[name].breaker is not None):
                    # Skipping one member's report would deadlock the
                    # controller's aligned-epoch barrier.
                    raise ValueError(
                        f"session {name!r}: fault schedules and circuit "
                        "breakers are not supported on jointly controlled "
                        "sessions"
                    )
                self._controller_of[name] = ctl
        for s in self.sessions:
            if s.driver is None and s.name not in self._controller_of:
                self._check_sink_session(s)

        self.clock = SimClock(self.config.dt)
        self.rng = RngStreams(self.config.seed)
        # The per-epoch dispatch draws always touch these three streams;
        # resolve them once (generator identity survives set_state, which
        # mutates bit-generator state in place).
        self._rng_noise = self.rng.throughput_noise
        self._rng_rjit = self.rng.restart_jitter
        self._rng_faults = self.rng.faults
        self._started = False
        self._last_cmp_frac = 0.0
        # Fast path: single-entry allocation cache (key = change-point
        # state; see _step) and per-path slow-start tau hoisted out of
        # the step loop.
        self._alloc_key: tuple | None = None
        self._alloc_val: tuple | None = None
        # Frozen CpuTask instances reused across allocation phases,
        # keyed (session, nc) — tuner proposals revisit the same
        # concurrency values, and large populations rebuild these at
        # every change point otherwise.
        self._cpu_task_memo: dict[tuple[str, int], CpuTask] = {}
        self._tau = {
            s.name: self.topology.path(s.spec.path_name).tcp.slow_start_tau
            for s in self.sessions
        }
        # Batched per-step jitter: one vectorized normal draw per epoch
        # span, consumed left to right.  Only safe when the number of
        # draws until the next epoch closure is predictable: duration-
        # limited sessions (infinite bytes) whose dispatch draws all go
        # through _dispatch_epoch (no joint controllers) and a non-zero
        # step sigma (sigma == 0 never draws).  ``run(until_s=...)``
        # additionally disables it (the stop can land mid-span).
        self._jit_buf = _NO_JITTER
        self._jit_pos = 0
        # Population-dispatch block buffer for the throughput-noise
        # stream (span step-jitter and epoch noise interleave on one
        # generator, so neither can be pre-drawn alone).  Activated by
        # the batch dispatcher when it adopts the lane; refilled with
        # sized ``standard_normal`` blocks — the identical value
        # sequence as the scalar draws (``normal(loc, s)`` is bitwise
        # ``loc + s * standard_normal()``), one generator call per
        # block instead of one per draw.
        self._pop_buffered = False
        self._pop_z = None
        self._pop_zpos = 0
        self._batch_jitter = (
            self.config.fast_path
            and not self.controllers
            and self.config.noise_sigma_step > 0
            and all(math.isinf(s.spec.total_bytes) for s in self.sessions)
        )
        # Event context for telemetry hooks fired from within a dispatch
        # (breaker transitions, retry attempts): sim time and epoch index
        # of the epoch being dispatched.
        self._ev_time = 0.0
        self._ev_index = 0

    def _check_sink_session(self, s: TransferSession) -> None:
        """Validate a session that is neither driver- nor
        controller-owned: it needs the engine's ``epoch_sink``."""
        if self.epoch_sink is None:
            raise ValueError(
                f"session {s.name!r} has neither a tuner nor a controller"
            )
        if s.breaker is not None:
            # The half-open probe adopts ``driver.current``, which a
            # sink-driven session does not have; the fleet's degrade
            # ladder lives in its admission layer instead.
            raise ValueError(
                f"session {s.name!r}: circuit breakers are not supported "
                "on sink-driven sessions"
            )

    # -- public API ------------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when every current session has finished."""
        return all(s.done for s in self.sessions)

    def step_once(self) -> None:
        """Advance the whole substrate by one ``dt`` step.

        The decoupled driver API: external loops (the fleet service)
        interleave ``step_once`` with :meth:`add_session` /
        :meth:`remove_session` instead of handing control to
        :meth:`run`.  The first call pays the same initialization as
        ``run`` (observability wiring, initial restart windows).
        """
        self._ensure_started()
        self._step()

    def add_session(self, s: TransferSession) -> None:
        """Admit a session to a (possibly mid-flight) substrate.

        The session starts its first control epoch at the current sim
        time, paying the same initial-launch restart cost a
        construction-time session pays.  Dynamic membership invalidates
        the jitter-batch draw prediction, so batching is disabled from
        here on (already-drawn values are still consumed in order — the
        RNG stream stays bit-exact).
        """
        name = s.spec.name
        if name in self._by_name:
            raise ValueError(f"duplicate session name {name!r}")
        if name in (EXT_CMP, EXT_TFR):
            raise ValueError(
                f"session names {EXT_CMP!r}/{EXT_TFR!r} are reserved"
            )
        self.topology.path(s.spec.path_name)  # validates existence
        if s.driver is None:
            self._check_sink_session(s)
        self._batch_jitter = False
        self.sessions.append(s)
        self._by_name[name] = s
        self._tau[name] = self.topology.path(s.spec.path_name).tcp.slow_start_tau
        self._alloc_key = None
        self._alloc_val = None
        if self._started:
            s.noise_factor = lognormal_factor(
                self.rng.throughput_noise, self.config.noise_sigma_epoch
            )
            s.begin_restart(
                self.client.restart.restart_time_s(
                    s.nc,
                    self._last_cmp_frac,
                    s.spec.epoch_s,
                    rng=self.rng.restart_jitter,
                )
            )
            if self.obs is not None:
                self.obs.bus.emit(EpochStart(
                    time=self.clock.now, session=name, index=0,
                    params=tuple(s.params),
                ))

    def remove_session(self, name: str) -> TransferSession:
        """Retire a *finished* session from the substrate.

        Finished sessions consume no RNG draws and contribute nothing to
        the allocation phase, so removal is draw-neutral; removing an
        active session would change every other session's trajectory and
        is refused.
        """
        s = self._by_name.get(name)
        if s is None:
            raise KeyError(f"no session {name!r}")
        if not s.done:
            raise ValueError(
                f"session {name!r} is still active; only finished "
                "sessions can be removed"
            )
        self.sessions.remove(s)
        del self._by_name[name]
        self._tau.pop(name, None)
        self._alloc_key = None
        self._alloc_val = None
        return s

    def _ensure_started(self) -> None:
        """Idempotent run preamble: observability wiring plus the
        per-session initialization (shared by :meth:`run` and
        :meth:`step_once`)."""
        if self.obs is not None and not self.obs.active:
            # An inert bundle (NullBus, no metrics/spans) is dropped
            # outright so the loop body never constructs event objects
            # — this is what makes Instrumentation.noop() free.
            self.obs = None
        if self.obs is not None:
            self._install_obs_hooks()
        if not self._started:
            self._initialize()

    def run(self, until_s: float | None = None) -> dict[str, Trace]:
        """Advance until all sessions finish (or ``until_s``); returns the
        per-session traces."""
        if until_s is not None:
            # A bounded run can stop mid-epoch; the jitter-batch
            # prediction assumes every started span runs to its closure,
            # so keep such runs on per-step draws (still bit-identical).
            self._batch_jitter = False
        self._ensure_started()
        while not all(s.done for s in self.sessions):
            if until_s is not None and self.clock.now >= until_s - 1e-9:
                break
            self._step()
        finished = all(s.done for s in self.sessions)
        for s in self.sessions:
            if s.epoch_elapsed > 0:
                rec = s.close_epoch(start_time=self.clock.now - s.epoch_elapsed)
                # A partial epoch flushed by an early ``until_s`` stop is
                # not journaled: the journal must hold only epochs the
                # uninterrupted run would also close, so a later resume
                # re-runs that span in full.  Events mirror the journal:
                # only epochs a journal would hold are published.
                if self.obs is not None and finished:
                    self._emit_epoch_end(s, rec)
                if self.journal is not None and finished:
                    self.journal.write_epoch(s.name, rec, s.last_epoch_steps)
        if self.journal is not None and finished:
            self.journal.write_end()
        return {s.name: s.trace for s in self.sessions}

    # -- checkpoint support ----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready mutable run state at the current instant.

        Captures the sim clock, every RNG stream's exact bit-generator
        state, and each session's runtime (including retry counters,
        breaker state, and partial-epoch steps).  Tuner drivers are
        excluded by design — resume reconstructs them by replaying the
        journal (:mod:`repro.checkpoint.replay`).
        """
        if self._jit_pos < len(self._jit_buf):
            raise RuntimeError(
                "snapshot with an undrained jitter batch: the RNG state "
                "would include draws the step loop has not consumed yet"
            )
        return {
            "format": 1,
            "tick": self.clock.tick,
            "last_cmp_frac": self._last_cmp_frac,
            "rng": self.rng.get_state(),
            "sessions": {s.name: s.snapshot() for s in self.sessions},
        }

    def restore_snapshot(
        self,
        state: dict,
        epochs_by_session: dict[
            str, list[tuple[EpochRecord, list[StepRecord]]]
        ],
    ) -> None:
        """Restore a :meth:`snapshot` onto a freshly built engine.

        The engine must be constructed with the same configuration
        (topology, host, sessions, seed) as the journaled run;
        ``epochs_by_session`` supplies the journaled epochs (with step
        records) used to rebuild the traces.  Replace each session's
        driver with a replayed one *before* calling this (the snapshot
        carries no tuner state).
        """
        if state.get("format") != 1:
            raise ValueError(
                f"unsupported snapshot format {state.get('format')!r}"
            )
        names = set(state["sessions"])
        if names != set(self._by_name):
            raise ValueError(
                f"snapshot sessions {sorted(names)} do not match engine "
                f"sessions {sorted(self._by_name)}"
            )
        self._started = True
        self.clock.tick = int(state["tick"])
        self._last_cmp_frac = float(state["last_cmp_frac"])
        self.rng.set_state(state["rng"])
        # Snapshots are only written with a drained jitter batch, so the
        # restored RNG state carries no pre-drawn values.
        self._alloc_key = None
        self._alloc_val = None
        self._jit_buf = _NO_JITTER
        self._jit_pos = 0
        for name, sess_state in state["sessions"].items():
            self._by_name[name].restore_snapshot(
                sess_state, epochs_by_session.get(name, [])
            )

    # -- setup -----------------------------------------------------------

    def _initialize(self) -> None:
        self._started = True
        for ctl in self.controllers:
            for name, params in ctl.initial_params().items():
                self._by_name[name].params = params
        # Every tool pays its initial startup cost, baseline included.
        load = self.schedule.at(0.0)
        shares = self._cpu_shares(load)
        cmp_frac = shares.get(EXT_CMP, 0.0) / self.host.cores
        for s in self.sessions:
            s.noise_factor = lognormal_factor(
                self.rng.throughput_noise, self.config.noise_sigma_epoch
            )
            s.begin_restart(
                self.client.restart.restart_time_s(
                    s.nc,
                    cmp_frac,
                    s.spec.epoch_s,
                    rng=self.rng.restart_jitter,
                )
            )
        if self.obs is not None:
            for s in self.sessions:
                self.obs.bus.emit(EpochStart(
                    time=self.clock.now, session=s.name, index=0,
                    params=tuple(s.params),
                ))

    # -- observability ----------------------------------------------------

    def _install_obs_hooks(self) -> None:
        """Point the fault machinery's and journal's telemetry callbacks
        at this engine's bus/metrics.

        Called from :meth:`run` (idempotent), *after* any resume replay
        has driven the breaker/retry state — replayed epochs must not
        re-publish events the original run already emitted.
        """
        assert self.obs is not None
        bus = self.obs.bus
        metrics = self.obs.metrics
        for s in self.sessions:
            name = s.name
            if s.breaker is not None:
                def _on_transition(old: str, new: str, _name=name) -> None:
                    bus.emit(BreakerTransition(
                        time=self._ev_time, session=_name,
                        index=self._ev_index, old=old, new=new,
                    ))
                    if metrics is not None:
                        metrics.counter(
                            "repro_breaker_transitions_total",
                            session=_name, to=new,
                        ).inc()
                s.breaker.on_transition = _on_transition
            if s.retry_state is not None:
                def _on_retry(attempt: int, backoff_s: float,
                              _name=name) -> None:
                    bus.emit(RetryAttempt(
                        time=self._ev_time, session=_name,
                        index=self._ev_index, attempt=attempt,
                        backoff_s=backoff_s,
                    ))
                    if metrics is not None:
                        metrics.counter(
                            "repro_retries_total", session=_name
                        ).inc()
                s.retry_state.on_retry = _on_retry
        if metrics is not None:
            for ctl in self.controllers:
                ctl.metrics = metrics
        if self.journal is not None and metrics is not None:
            def _on_record(kind: str) -> None:
                metrics.counter(
                    "repro_journal_records_total", record_kind=kind
                ).inc()
            self.journal.on_record = _on_record

    def _emit_epoch_end(self, s: TransferSession, rec: EpochRecord) -> None:
        """Publish one closed epoch (events timed by the epoch's own
        sim-time boundary so live emission matches journal
        reconstruction float-exactly)."""
        assert self.obs is not None
        publish_epoch_record(self.obs, s.name, rec)

    # -- one step ----------------------------------------------------------

    def _cpu_shares(
        self,
        load: ExternalLoad,
        session_tasks: list[CpuTask] | None = None,
    ) -> dict[str, float]:
        if session_tasks is None:
            session_tasks = [
                CpuTask(s.name, n_entities=s.nc, weight=1.0)
                for s in self.sessions
                if not s.done
            ]
        tasks = list(session_tasks)
        if load.ext_cmp > 0:
            tasks.append(
                CpuTask(
                    EXT_CMP,
                    n_entities=load.ext_cmp * self.host.cores,
                    weight=self.host.dgemm_thread_weight,
                )
            )
        if load.ext_tfr > 0:
            tasks.append(
                CpuTask(EXT_TFR, n_entities=self._ext_procs(load), weight=1.0)
            )
        if not tasks:
            return {}
        return fair_shares(tasks, self.host.cores)

    def _ext_procs(self, load: ExternalLoad) -> int:
        return max(1, load.ext_tfr // self.config.ext_streams_per_proc)

    def _ext_path_name(self) -> str:
        if self.config.ext_tfr_path is not None:
            return self.config.ext_tfr_path
        return self.sessions[0].spec.path_name

    def _allocation_phase(
        self, load: ExternalLoad
    ) -> tuple[float, dict[str, float], float]:
        """Steps 1-3 of the pipeline: CPU fair-shares → effective loss →
        flow groups → max-min allocation → context-switch efficiency.

        Pure in everything but the change-point state ``_step`` keys its
        cache on: the external load plus each session's
        ``(done, restarting, params)``.  Returns ``(cmp_frac, alloc,
        eta)``.
        """
        dt = self.config.dt
        # One walk computes each session's derived parameter values:
        # ``nc``/``np_``/``streams`` re-derive from the param map on
        # every property access, and at fleet population sizes those
        # repeated walks dominate the phase.  The values (and hence
        # every float below) are identical to the property-per-use
        # formulation; frozen CpuTasks are reused across change points
        # since tuner proposals revisit the same concurrency values.
        task_memo = self._cpu_task_memo
        alive: list[tuple[TransferSession, int, int, int]] = []
        session_tasks: list[CpuTask] = []
        for s in self.sessions:
            if s.done:
                continue
            nc = s.nc
            np_ = s.np_
            alive.append((s, nc, np_, nc * np_))
            tkey = (s.name, nc)
            task = task_memo.get(tkey)
            if task is None:
                task = CpuTask(s.name, n_entities=nc, weight=1.0)
                task_memo[tkey] = task
            session_tasks.append(task)
        shares = self._cpu_shares(load, session_tasks)
        cmp_frac = shares.get(EXT_CMP, 0.0) / self.host.cores

        # Sessions that will push bytes during (part of) this step.
        live = [t for t in alive if t[0].restart_remaining < dt]

        # Total streams per path -> effective loss -> per-stream caps.
        path_streams: dict[str, int] = {}
        for s, nc, np_, streams in live:
            pn = s.spec.path_name
            path_streams[pn] = path_streams.get(pn, 0) + streams
        if load.ext_tfr > 0:
            pn = self._ext_path_name()
            path_streams[pn] = path_streams.get(pn, 0) + load.ext_tfr

        groups: list[FlowGroup] = []
        for s, nc, np_, streams in live:
            path = self.topology.path(s.spec.path_name)
            stream_cap = path.stream_cap_mbps(path_streams[s.spec.path_name])
            cpu_cap = self.client.cpu_capacity_mbps(
                np_, shares.get(s.name, 0.0), self.host
            ) * self.host.pinning_efficiency(nc)
            mem_cap = self.host.memory_cap_mbps(nc, load.ext_cmp)
            groups.append(
                FlowGroup(
                    name=s.name,
                    path=path,
                    n_streams=streams,
                    group_cap_mbps=min(cpu_cap, mem_cap, s.disk_cap()),
                    stream_cap_mbps=stream_cap,
                )
            )
        if load.ext_tfr > 0:
            path = self.topology.path(self._ext_path_name())
            procs = self._ext_procs(load)
            per_proc_streams = max(1, math.ceil(load.ext_tfr / procs))
            cpu_cap = self.client.cpu_capacity_mbps(
                per_proc_streams, shares.get(EXT_TFR, 0.0), self.host
            )
            groups.append(
                FlowGroup(
                    name=EXT_TFR,
                    path=path,
                    n_streams=load.ext_tfr,
                    group_cap_mbps=cpu_cap,
                    stream_cap_mbps=path.stream_cap_mbps(
                        path_streams[self._ext_path_name()]
                    ),
                )
            )

        alloc = max_min_fair_allocation(groups) if groups else {}

        runnable = (
            sum(t[3] for t in live)
            + load.ext_cmp * self.host.cores * self.host.dgemm_runnable_factor
            + load.ext_tfr
        )
        eta = (
            context_switch_efficiency(
                runnable, self.host.cores, self.host.cs_coeff
            )
            if runnable > 0
            else 1.0
        )
        return cmp_frac, alloc, eta

    def _step(self) -> None:
        dt = self.config.dt
        t = self.clock.now
        load = self.schedule.at(t)

        if self.config.fast_path:
            # Change-point key: everything the allocation phase reads
            # that can change mid-run.  The external load covers
            # schedule transitions; per-session (done, restarting,
            # params) covers epoch dispatch (parameter adoption),
            # restart windows crossing the one-step threshold, breaker
            # fallbacks (they act through params and restarts), and
            # session start/stop.  Topology/host/client are immutable.
            key = (
                load,
                tuple(
                    (s.done, s.restart_remaining < dt, s.params)
                    for s in self.sessions
                ),
            )
            if key != self._alloc_key:
                self._alloc_val = self._allocation_phase(load)
                self._alloc_key = key
            cmp_frac, alloc, eta = self._alloc_val
        else:
            cmp_frac, alloc, eta = self._allocation_phase(load)
        self._last_cmp_frac = cmp_frac

        if self._batch_jitter and self._jit_pos >= len(self._jit_buf):
            self._refill_jitter()

        spans = self.obs.spans if self.obs is not None else None

        # Noise/advance phase: move bytes and advance per-session clocks.
        if spans is not None:
            _t0 = spans.now()
        sigma_step = self.config.noise_sigma_step
        noise_rng = self.rng.throughput_noise
        taus = self._tau
        jit_buf = self._jit_buf
        jit_pos = self._jit_pos
        jit_len = len(jit_buf)
        for s in self.sessions:
            if s.done:
                continue
            run_s = dt - max(0.0, min(s.restart_remaining, dt))
            moved = 0.0
            if run_s > 0 and s.name in alloc:
                ramp = _ramp_average(taus[s.name], s.time_since_start, run_s)
                if jit_pos < jit_len:
                    # Batched draw: same normal sequence as the scalar
                    # calls (numpy's sized draws are bit-identical), with
                    # exp applied per consumed scalar as in
                    # lognormal_factor.
                    jitter = float(np.exp(jit_buf[jit_pos]))
                    jit_pos += 1
                else:
                    jitter = lognormal_factor(noise_rng, sigma_step)
                rate = (alloc[s.name] * eta * s.noise_factor * jitter
                        * ramp * s.fault_rate_factor())
                moved = s.state.account(rate * MB * run_s, dt)
                s.time_since_start += run_s
            else:
                s.state.account(0.0, dt)
            s.record_step(time=t, rate=moved / MB / dt, bytes_moved=moved)
            s.restart_remaining = max(0.0, s.restart_remaining - dt)
            s.epoch_elapsed += dt
            s.epoch_run_s += run_s
            s.epoch_bytes += moved
        self._jit_pos = jit_pos
        if spans is not None:
            spans.record("epoch/transfer", max(0.0, spans.now() - _t0))

        self.clock.advance()
        now = self.clock.now

        # Epoch boundaries (and transfer completion) close out epochs.
        if spans is not None:
            _t0 = spans.now()
        closed: list[tuple[TransferSession, EpochRecord]] = []
        for s in self.sessions:
            if s.epoch_elapsed <= 0:
                continue
            target = s.spec.epoch_s
            if s.epoch_index == 0:
                target += s.spec.epoch_offset_s
            boundary = s.epoch_elapsed >= target - 1e-9
            if not boundary and not s.done:
                continue
            rec = s.close_epoch(start_time=now - s.epoch_elapsed)
            closed.append((s, rec))
            if self.obs is not None:
                self._emit_epoch_end(s, rec)
            if s.done:
                continue
            if spans is not None:
                _tp = spans.now()
            self._dispatch_epoch(s, rec)
            if spans is not None:
                spans.record("epoch/propose", max(0.0, spans.now() - _tp))
            if self.obs is not None and not s.done:
                self.obs.bus.emit(EpochStart(
                    time=rec.start + rec.duration, session=s.name,
                    index=rec.index + 1, params=tuple(s.params),
                ))
        if spans is not None and closed:
            spans.record("epoch/observe", max(0.0, spans.now() - _t0))

        # Journal the step's closed epochs, then one snapshot at this
        # consistent point (after every dispatch above consumed its RNG
        # draws) — the resume anchor.
        if self.journal is not None and closed:
            for s, rec in closed:
                self.journal.write_epoch(s.name, rec, s.last_epoch_steps)
            self.journal.write_snapshot(self.snapshot())
            if self.obs is not None:
                self.obs.bus.emit(SnapshotWritten(
                    time=now,
                    epochs=sum(len(x.trace.epochs) for x in self.sessions),
                ))

    # -- fast-path jitter batching ----------------------------------------

    def _refill_jitter(self) -> None:
        """Draw the whole upcoming span's step jitters in one vectorized
        call.

        ``Generator.normal(loc, scale, size=n)`` produces the identical
        value sequence (and identical end state) as ``n`` scalar calls,
        so consuming the buffer left to right keeps the
        ``throughput_noise`` stream bit-exact with the reference path.
        The span ends at the first step on which *any* session closes an
        epoch: every dispatch draw and every journal snapshot therefore
        sees a drained buffer.
        """
        n = self._predict_jitter_draws()
        if n > 0:
            sigma = self.config.noise_sigma_step
            self._jit_buf = self.rng.throughput_noise.normal(
                -0.5 * sigma * sigma, sigma, size=n
            )
        else:
            self._jit_buf = _NO_JITTER
        self._jit_pos = 0

    def _predict_jitter_draws(self) -> int:
        """Count the step-jitter draws between now and the end of the
        step on which the next epoch closes (inclusive).

        Mirrors the advance phase's float arithmetic exactly: a session
        draws one jitter per step while it is not done and its restart
        window is below one step; ``elapsed_s``/``epoch_elapsed``
        accumulate by ``dt`` with the same operations the engine
        applies, so done/boundary transitions land on the same step.
        Only called for duration-limited sessions (infinite bytes),
        whose completion does not depend on the bytes moved.
        """
        dt = self.config.dt
        sims = [
            # [elapsed_s, duration limit, restart_remaining,
            #  epoch_elapsed, epoch target]
            [s.state.elapsed_s, s.spec.max_duration_s, s.restart_remaining,
             s.epoch_elapsed, s.epoch_target_s()]
            for s in self.sessions
            if not s.done
        ]
        count = 0
        while sims:
            closing = False
            for st in sims:
                if st[2] < dt:
                    count += 1
                st[0] += dt                   # state.account: elapsed_s
                st[2] = max(0.0, st[2] - dt)  # restart decay
                st[3] += dt                   # epoch_elapsed
                if st[3] >= st[4] - 1e-9 or st[0] >= st[1]:
                    closing = True
            if closing:
                break
        return count

    def _dispatch_epoch(
        self, s: TransferSession, rec, *,
        noise: float | None = None, rjit: float | None = None,
    ) -> None:
        """Close out one control epoch: drive the retry policy and circuit
        breaker, and feed the tuner/controller — but never with a faulted
        or absent observation.

        ``noise``/``rjit`` accept pre-drawn per-epoch factors (the
        batched shard sizes one draw per stream over a whole dispatch
        round — the same value sequence as per-dispatch scalar draws);
        ``None`` draws from the streams here, the scalar behavior."""
        if self._jit_pos < len(self._jit_buf):
            raise RuntimeError(
                "epoch dispatched with an undrained jitter batch: the "
                "fast path's draw prediction desynchronized from the "
                "step loop"
            )
        obs = self.obs
        end_t = rec.start + rec.duration
        if obs is not None:
            # Context for hooks (breaker/retry) fired inside this dispatch.
            self._ev_time = end_t
            self._ev_index = rec.index

        if s.driver is None and s.name in self._controller_of:
            # Jointly controlled sessions carry no fault machinery
            # (enforced at construction); keep the original path.
            ctl = self._controller_of[s.name]
            result = ctl.observe(s.name, rec.observed)
            if result is not None:
                for name, params in result.items():
                    self._adopt(self._by_name[name], params)
                    if obs is not None:
                        obs.bus.emit(TunerAccept(
                            time=end_t, session=name, index=rec.index,
                            params=tuple(params),
                        ))
            return

        # Sink-driven sessions: the external owner (fleet shard) sees
        # every closed epoch — including faulted ones, so its journal
        # replays — but its proposal is only honored on the clean path.
        sink = self.epoch_sink if s.driver is None else None

        # Fixed per-epoch draw pattern: one value from each stream no
        # matter which recovery path runs below, so fault policies are
        # compared on identical noise realizations.
        if noise is None:
            noise = lognormal_factor(
                self._rng_noise, self.config.noise_sigma_epoch
            )
        if rjit is None:
            rjit = lognormal_factor(
                self._rng_rjit, self.client.restart.jitter_sigma
            )
        # The backoff draw is only consumed by a retry policy, and the
        # faults stream's only other consumer is a fault model; with
        # neither present, skipping it cannot perturb any later draw.
        if s.retry_state is not None or s.fault_model is not None:
            backoff_u = float(self._rng_faults.uniform(-1.0, 1.0))
        else:
            backoff_u = 0.0

        if s.retry_state is not None:
            s.retry_state.next_epoch()
        prev_state = s.breaker.state if s.breaker is not None else None
        if s.breaker is not None:
            s.breaker.record_epoch(rec.faulted)

        # A session abort continues only while the retry budget allows.
        if (rec.fault == SESSION_ABORT and s.retry_state is not None
                and not s.retry_state.can_retry()):
            s.failed = True
            if sink is not None:
                sink(s, rec)
            if obs is not None:
                obs.bus.emit(TunerReject(
                    time=end_t, session=s.name, index=rec.index,
                    params=tuple(s.params), reason="budget-exhausted",
                ))
            return

        if s.breaker is not None and s.breaker.state == OPEN:
            # Pinned at the safe default: tuner bypassed (its search
            # state frozen), no retry hammering, the tool left running.
            self._enter_fallback(s, entering=prev_state != OPEN,
                                 noise=noise, rjit=rjit)
            if obs is not None:
                obs.bus.emit(TunerReject(
                    time=end_t, session=s.name, index=rec.index,
                    params=tuple(s.params), reason="breaker-open",
                ))
            return

        if s.breaker is not None and prev_state == OPEN:
            # Cooldown over: probe with the tuner's standing proposal.
            # The fallback epochs' throughput is never observed.
            probe = tuple(s.driver.current)
            if obs is not None:
                obs.bus.emit(TunerProposal(
                    time=end_t, session=s.name, index=rec.index,
                    params=probe, observed=None,
                ))
            self._adopt(s, s.driver.current, force_restart=True,
                        noise=noise, rjit=rjit)
            if obs is not None:
                obs.bus.emit(TunerAccept(
                    time=end_t, session=s.name, index=rec.index,
                    params=probe,
                ))
            return

        if rec.faulted:
            # The tool died mid-epoch: the tuner must not see this
            # epoch's throughput.  Relaunch, charging the restart window
            # plus the policy's backoff.
            backoff = 0.0
            if s.retry_state is not None and s.retry_state.can_retry():
                backoff = s.retry_state.record_failure(u=backoff_u)
            if sink is not None:
                sink(s, rec)  # tenant journals the fault; params held
            self._adopt(s, s.params, force_restart=True,
                        extra_dead_s=backoff, noise=noise, rjit=rjit)
            if obs is not None:
                obs.bus.emit(TunerReject(
                    time=end_t, session=s.name, index=rec.index,
                    params=tuple(s.params), reason="faulted",
                ))
            return

        if s.retry_state is not None:
            s.retry_state.record_success()

        if rec.fault == OBS_LOSS:
            # Control channel dropped the measurement: hold the current
            # parameters; the tuner observes nothing.
            if sink is not None:
                sink(s, rec)
            self._adopt(s, s.params, noise=noise, rjit=rjit)
            if obs is not None:
                obs.bus.emit(TunerReject(
                    time=end_t, session=s.name, index=rec.index,
                    params=tuple(s.params), reason="obs-loss",
                ))
            return

        if sink is not None:
            proposed = sink(s, rec)
            proposal = s.params if proposed is None else tuple(proposed)
        else:
            proposal = s.driver.observe(rec.observed)
        if obs is not None:
            obs.bus.emit(TunerProposal(
                time=end_t, session=s.name, index=rec.index,
                params=tuple(proposal), observed=rec.observed,
            ))
        self._adopt(s, proposal, noise=noise, rjit=rjit)
        if obs is not None:
            obs.bus.emit(TunerAccept(
                time=end_t, session=s.name, index=rec.index,
                params=tuple(proposal),
            ))

    def _restart_dead_s(
        self, s: TransferSession, *, warm: bool = False,
        rjit: float | None = None,
    ) -> float:
        """Restart dead time; jitter comes from ``rjit`` when pre-drawn,
        else from the stream (legacy paths)."""
        dead = self.client.restart.restart_time_s(
            s.nc,
            self._last_cmp_frac,
            s.spec.epoch_s,
            warm=warm,
            rng=self.rng.restart_jitter if rjit is None else None,
        )
        if rjit is not None:
            dead = min(
                dead * rjit,
                self.client.restart.max_fraction_of_epoch * s.spec.epoch_s,
            )
        return dead

    def _enter_fallback(
        self, s: TransferSession, *, entering: bool,
        noise: float, rjit: float,
    ) -> None:
        """Hold the session at the breaker's safe default (set-and-hold:
        only the transition pays a relaunch)."""
        params = s.fallback_params()
        changed = params != s.params
        s.params = params
        s.noise_factor = noise
        if entering or changed:
            dead = self._restart_dead_s(s, rjit=rjit)
            s.begin_restart(
                min(dead,
                    s.spec.epoch_s * self.client.restart.max_fraction_of_epoch)
            )

    def _adopt(
        self,
        s: TransferSession,
        params: tuple[int, ...],
        *,
        force_restart: bool = False,
        extra_dead_s: float = 0.0,
        noise: float | None = None,
        rjit: float | None = None,
    ) -> None:
        needs_restart, warm = s.apply_params(params)
        if force_restart:
            needs_restart, warm = True, False
        s.noise_factor = noise if noise is not None else lognormal_factor(
            self.rng.throughput_noise, self.config.noise_sigma_epoch
        )
        dead = extra_dead_s
        if needs_restart:
            dead += self._restart_dead_s(s, warm=warm, rjit=rjit)
        if s.fault_model is not None and s.fault_model.draw_fault(
            self.rng.faults
        ):
            dead += self._restart_dead_s(s, rjit=rjit)
        if dead > 0:
            s.begin_restart(
                min(dead, s.spec.epoch_s * self.client.restart.max_fraction_of_epoch)
            )


def _ramp_average(tau: float, t0: float, run_s: float) -> float:
    """Mean of the slow-start ramp ``1 - exp(-t/tau)`` over
    ``[t0, t0 + run_s]``."""
    if run_s <= 0:
        return 0.0
    return 1.0 - (tau / run_s) * (
        math.exp(-t0 / tau) - math.exp(-(t0 + run_s) / tau)
    )
