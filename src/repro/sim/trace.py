"""Time-series recording for simulation runs.

Two granularities are recorded:

* :class:`StepRecord` — one per simulation step (default 1 s): instantaneous
  rate, bytes moved, whether the session was inside a restart window.
* :class:`EpochRecord` — one per control epoch (default 30 s): the parameter
  vector used, observed (with-overhead) throughput, best-case (no-overhead)
  throughput, and bytes moved.  These are exactly the quantities the paper
  plots in Figures 5–11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np


class StepRecord(NamedTuple):
    """Instantaneous state of one session over one simulation step.

    A NamedTuple rather than a (frozen) dataclass: runs construct one
    record per simulated second, so the C-level tuple constructor is a
    measurable win for both the scalar step loop and the batch engine's
    bulk materialization — with the same immutability, field access,
    repr style, and equality semantics.
    """

    time: float  #: start of step, seconds
    rate: float  #: achieved rate over this step, MB/s (0 while restarting)
    restarting: bool  #: True if the step fell inside a restart window
    bytes_moved: float  #: bytes transferred during the step


class EpochRecord(NamedTuple):
    """Aggregate of one control epoch of a tuner-driven session.

    The fault/recovery fields default to the clean-epoch values so
    records from fault-free runs (and pre-fault trace files) read
    unchanged.  A NamedTuple for the same reason as :class:`StepRecord`
    (epoch closes are on the batch engine's per-epoch hot path).
    """

    index: int  #: epoch counter c
    start: float  #: epoch start time, seconds
    duration: float  #: epoch length, seconds
    params: tuple[int, ...]  #: parameter vector (e.g. (nc,) or (nc, np))
    observed: float  #: epoch-average throughput with restart overhead, MB/s
    best_case: float  #: epoch-average throughput excluding restart dead time
    bytes_moved: float  #: bytes transferred during the epoch
    faulted: bool = False  #: a hard fault (crash/abort/blackout) hit the epoch
    fault: str | None = None  #: fault kind (see repro.faults.events), if any
    retries: int = 0  #: cumulative retries the session consumed so far
    breaker: str = "closed"  #: circuit-breaker state governing the epoch
    tuned: bool = True  #: observation was fed to the tuner as genuine


@dataclass
class Trace:
    """All records of a single session's run, with convenience accessors."""

    label: str = ""
    steps: list[StepRecord] = field(default_factory=list)
    epochs: list[EpochRecord] = field(default_factory=list)

    # -- recording -----------------------------------------------------

    def add_step(self, rec: StepRecord) -> None:
        self.steps.append(rec)

    def add_epoch(self, rec: EpochRecord) -> None:
        if self.epochs and rec.index != self.epochs[-1].index + 1:
            raise ValueError(
                f"epoch indices must be consecutive; got {rec.index} after "
                f"{self.epochs[-1].index}"
            )
        self.epochs.append(rec)

    # -- accessors -----------------------------------------------------

    @property
    def total_bytes(self) -> float:
        """Total bytes moved across all recorded steps."""
        return float(sum(s.bytes_moved for s in self.steps))

    def step_times(self) -> np.ndarray:
        return np.array([s.time for s in self.steps])

    def step_rates(self) -> np.ndarray:
        return np.array([s.rate for s in self.steps])

    def epoch_times(self) -> np.ndarray:
        return np.array([e.start for e in self.epochs])

    def epoch_observed(self) -> np.ndarray:
        return np.array([e.observed for e in self.epochs])

    def epoch_best_case(self) -> np.ndarray:
        return np.array([e.best_case for e in self.epochs])

    def epoch_param(self, dim: int) -> np.ndarray:
        """Trajectory of one parameter (e.g. dim 0 = nc) across epochs."""
        return np.array([e.params[dim] for e in self.epochs])

    def faulted_epochs(self) -> list[int]:
        """Indices of epochs a hard fault hit."""
        return [e.index for e in self.epochs if e.faulted]

    def breaker_states(self) -> list[str]:
        """Circuit-breaker state per epoch (all "closed" without one)."""
        return [e.breaker for e in self.epochs]

    def tuner_fed_epochs(self) -> list[int]:
        """Indices of epochs whose throughput reached the tuner."""
        return [e.index for e in self.epochs if e.tuned]

    def mean_observed(self, *, from_time: float = 0.0, to_time: float | None = None) -> float:
        """Time-weighted mean observed throughput over [from_time, to_time)."""
        sel = [
            e
            for e in self.epochs
            if e.start >= from_time and (to_time is None or e.start < to_time)
        ]
        if not sel:
            raise ValueError("no epochs in requested window")
        total_t = sum(e.duration for e in sel)
        return float(sum(e.observed * e.duration for e in sel) / total_t)

    def mean_best_case(self, *, from_time: float = 0.0, to_time: float | None = None) -> float:
        """Time-weighted mean best-case throughput over [from_time, to_time)."""
        sel = [
            e
            for e in self.epochs
            if e.start >= from_time and (to_time is None or e.start < to_time)
        ]
        if not sel:
            raise ValueError("no epochs in requested window")
        total_t = sum(e.duration for e in sel)
        return float(sum(e.best_case * e.duration for e in sel) / total_t)
