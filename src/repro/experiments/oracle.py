"""Oracle baselines: the best *static* setting, found by offline sweep.

The tuners' value proposition is reaching (a large fraction of) the best
static configuration *without knowing it in advance* and re-finding it
when the load changes.  This module computes that reference point by
brute force — something only the simulator can afford — so analyses can
report regret against it.

Two search strategies are available for the 1-D sweep:

* ``search="grid"`` evaluates every candidate (the reference);
* ``search="unimodal"`` exploits the paper's observation that the
  throughput-vs-concurrency surface is unimodal (rises to a critical
  point, then degrades): a memoized bisection on adjacent candidate
  pairs finds the peak in O(log n) evaluations, then a handful of
  spread probes verify the unimodal envelope.  If a probe beats the
  bisection peak by more than ``unimodal_tolerance`` (relative), the
  surface is treated as non-unimodal and the sweep falls back to the
  full grid — already-evaluated candidates are reused, so the fallback
  costs no more than the grid alone.

Both sweeps accept ``jobs`` (process fan-out of independent
evaluations) and ``cache`` (the content-addressed run cache,
:mod:`repro.cache`), which together make repeated oracle computations
effectively free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.stats import steady_state_mean
from repro.cache.runtime import CacheSpec, activated
from repro.core.base import StaticTuner
from repro.endpoint.load import ExternalLoad, LoadSchedule

from repro.experiments.parallel import pool_map
from repro.experiments.runner import run_single
from repro.experiments.scenarios import Scenario

#: Default concurrency candidates: dense low end, geometric high end.
DEFAULT_NC_GRID = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 26, 32, 40, 50,
                   64, 80, 100, 128, 160, 200, 256, 320, 400, 512)

#: Relative slack allowed before a verification probe disproves
#: unimodality (simulated surfaces carry sampling noise).
DEFAULT_UNIMODAL_TOLERANCE = 0.05


@dataclass(frozen=True)
class OracleResult:
    """Best static setting found by the sweep."""

    params: tuple[int, ...]
    throughput_mbps: float
    evaluations: int
    #: Which strategy produced the answer: ``"grid"``, ``"unimodal"``,
    #: or ``"unimodal:grid-fallback"`` when verification disproved
    #: unimodality and the full grid decided.
    search: str = field(default="grid")

    def regret_fraction(self, achieved_mbps: float) -> float:
        """Fraction of the oracle's throughput left on the table."""
        if self.throughput_mbps <= 0:
            raise ValueError("oracle throughput is zero")
        return max(0.0, 1.0 - achieved_mbps / self.throughput_mbps)


# -- shared evaluation --------------------------------------------------------


def _eval_static(
    task: tuple[
        Scenario, ExternalLoad | LoadSchedule | None, tuple[int, ...],
        float, int, bool, int, int,
    ],
) -> float:
    """Score one static setting: short transfer, steady-tail mean.

    Module-level so sweeps can fan evaluations out over processes; the
    task tuple is everything one evaluation needs.  The 1-D and 2-D
    sweeps both funnel through here (they used to carry copy-pasted
    run-and-score loops).
    """
    scenario, load, params, duration_s, seed, tune_np, fixed_np, max_nc = task
    if tune_np:
        trace = run_single(
            scenario,
            StaticTuner(params=params),
            load=load,
            duration_s=duration_s,
            tune_np=True,
            seed=seed,
        )
    else:
        trace = run_single(
            scenario,
            StaticTuner(),
            load=load,
            duration_s=duration_s,
            x0=params,
            fixed_np=fixed_np,
            seed=seed,
            max_nc=max_nc,
        )
    return steady_state_mean(trace, tail_fraction=0.75)


def _best_of(
    scored: Sequence[tuple[tuple[int, ...], float]],
) -> tuple[float, tuple[int, ...]]:
    """First-maximum argmax over ``(params, score)`` pairs."""
    best: tuple[float, tuple[int, ...]] | None = None
    for params, score in scored:
        if best is None or score > best[0]:
            best = (score, params)
    if best is None:
        raise ValueError("no candidate inside [1, max_nc]")
    return best


# -- 1-D sweep ----------------------------------------------------------------


def _unimodal_probe_indices(n: int) -> tuple[int, ...]:
    """Spread verification probes: ends, quartiles, midpoint."""
    return tuple(sorted({0, n // 4, n // 2, (3 * n) // 4, n - 1}))


def oracle_static_nc(
    scenario: Scenario,
    *,
    load: ExternalLoad | LoadSchedule | None = None,
    fixed_np: int = 8,
    candidates: Sequence[int] = DEFAULT_NC_GRID,
    duration_s: float = 240.0,
    seed: int = 0,
    max_nc: int = 512,
    search: str = "grid",
    unimodal_tolerance: float = DEFAULT_UNIMODAL_TOLERANCE,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> OracleResult:
    """Sweep static concurrency values; return the best.

    Each candidate runs a short transfer (no restarts, so the measured
    level is the best-case surface value) and the steady tail is scored.

    ``search="unimodal"`` replaces the exhaustive grid with a bisection
    on the sorted candidate list (O(log n) evaluations) plus a few
    verification probes; a probe beating the bisection peak by more than
    ``unimodal_tolerance`` (relative) triggers a full-grid fallback that
    reuses every evaluation already made.  ``jobs`` fans independent
    evaluations over processes; ``cache`` activates the run cache for
    them (in-process and in pool workers alike).
    """
    if search not in ("grid", "unimodal"):
        raise ValueError(f"unknown search {search!r}: 'grid' or 'unimodal'")
    if not candidates:
        raise ValueError("need at least one candidate")
    if unimodal_tolerance < 0:
        raise ValueError("unimodal_tolerance must be >= 0")
    grid = sorted({int(nc) for nc in candidates if 1 <= nc <= max_nc})
    if not grid:
        raise ValueError("no candidate inside [1, max_nc]")

    def task(nc: int):
        return (scenario, load, (nc,), duration_s, seed, False, fixed_np,
                max_nc)

    with activated(cache):
        if search == "grid":
            scores = pool_map(_eval_static, [task(nc) for nc in grid],
                              jobs=jobs)
            best = _best_of(list(zip([(nc,) for nc in grid], scores)))
            return OracleResult(
                params=best[1], throughput_mbps=best[0],
                evaluations=len(grid), search="grid",
            )
        return _unimodal_sweep(grid, task, unimodal_tolerance, jobs)


def _unimodal_sweep(
    grid: Sequence[int],
    task,
    tolerance: float,
    jobs: int,
) -> OracleResult:
    """Bisection-on-adjacent-pairs argmax with envelope verification."""
    memo: dict[int, float] = {}

    def fill(indices: Sequence[int]) -> None:
        missing = [i for i in sorted(set(indices)) if i not in memo]
        if not missing:
            return
        scores = pool_map(_eval_static, [task(grid[i]) for i in missing],
                          jobs=jobs)
        memo.update(zip(missing, scores))

    def f(i: int) -> float:
        fill([i])
        return memo[i]

    # Verification probes first: they brace the bisection and, batched,
    # they parallelize (the bisection itself is inherently sequential).
    n = len(grid)
    probes = _unimodal_probe_indices(n)
    fill(probes)

    lo, hi = 0, n - 1
    while lo < hi:
        mid = (lo + hi) // 2
        # On a unimodal surface, a rising adjacent pair means the peak
        # is to the right of mid; a falling (or flat) one, at/left of it.
        if f(mid) < f(mid + 1):
            lo = mid + 1
        else:
            hi = mid
    peak = lo
    peak_score = f(peak)

    slack = tolerance * abs(peak_score)
    if any(memo[p] > peak_score + slack for p in probes):
        # A spread probe beats the bisection peak beyond noise slack:
        # the surface is not unimodal on this grid.  Decide by full
        # grid, reusing everything already evaluated.
        fill(range(n))
        best = _best_of([((grid[i],), memo[i]) for i in range(n)])
        return OracleResult(
            params=best[1], throughput_mbps=best[0],
            evaluations=len(memo), search="unimodal:grid-fallback",
        )
    # The bisection peak may tie with a probe within tolerance; keep
    # whichever evaluated point actually scored highest.
    best = _best_of([((grid[i],), memo[i]) for i in sorted(memo)])
    return OracleResult(
        params=best[1], throughput_mbps=best[0],
        evaluations=len(memo), search="unimodal",
    )


# -- 2-D sweep ----------------------------------------------------------------


def oracle_static_nc_np(
    scenario: Scenario,
    *,
    load: ExternalLoad | LoadSchedule | None = None,
    nc_candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    np_candidates: Sequence[int] = (1, 2, 4, 8, 16, 32),
    duration_s: float = 240.0,
    seed: int = 0,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> OracleResult:
    """2-D sweep over (nc, np).

    ``jobs``/``cache`` work as in :func:`oracle_static_nc`.
    """
    if not nc_candidates or not np_candidates:
        raise ValueError("need candidates in both dimensions")
    pairs = [
        (int(nc), int(np_)) for nc in nc_candidates for np_ in np_candidates
    ]
    tasks = [
        (scenario, load, pair, duration_s, seed, True, 8, 512)
        for pair in pairs
    ]
    with activated(cache):
        scores = pool_map(_eval_static, tasks, jobs=jobs)
    best = _best_of(list(zip(pairs, scores)))
    return OracleResult(
        params=best[1], throughput_mbps=best[0], evaluations=len(pairs),
        search="grid",
    )
