"""Oracle baselines: the best *static* setting, found by offline sweep.

The tuners' value proposition is reaching (a large fraction of) the best
static configuration *without knowing it in advance* and re-finding it
when the load changes.  This module computes that reference point by
brute force — something only the simulator can afford — so analyses can
report regret against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import steady_state_mean
from repro.core.base import StaticTuner
from repro.endpoint.load import ExternalLoad, LoadSchedule

from repro.experiments.runner import run_single
from repro.experiments.scenarios import Scenario

#: Default concurrency candidates: dense low end, geometric high end.
DEFAULT_NC_GRID = (1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 26, 32, 40, 50,
                   64, 80, 100, 128, 160, 200, 256, 320, 400, 512)


@dataclass(frozen=True)
class OracleResult:
    """Best static setting found by the sweep."""

    params: tuple[int, ...]
    throughput_mbps: float
    evaluations: int

    def regret_fraction(self, achieved_mbps: float) -> float:
        """Fraction of the oracle's throughput left on the table."""
        if self.throughput_mbps <= 0:
            raise ValueError("oracle throughput is zero")
        return max(0.0, 1.0 - achieved_mbps / self.throughput_mbps)


def oracle_static_nc(
    scenario: Scenario,
    *,
    load: ExternalLoad | LoadSchedule | None = None,
    fixed_np: int = 8,
    candidates: Sequence[int] = DEFAULT_NC_GRID,
    duration_s: float = 240.0,
    seed: int = 0,
    max_nc: int = 512,
) -> OracleResult:
    """Sweep static concurrency values; return the best.

    Each candidate runs a short transfer (no restarts, so the measured
    level is the best-case surface value) and the steady tail is scored.
    """
    if not candidates:
        raise ValueError("need at least one candidate")
    best: tuple[float, tuple[int, ...]] | None = None
    n_evals = 0
    for nc in candidates:
        if not 1 <= nc <= max_nc:
            continue
        trace = run_single(
            scenario,
            StaticTuner(),
            load=load,
            duration_s=duration_s,
            x0=(nc,),
            fixed_np=fixed_np,
            seed=seed,
            max_nc=max_nc,
        )
        n_evals += 1
        score = steady_state_mean(trace, tail_fraction=0.75)
        if best is None or score > best[0]:
            best = (score, (nc,))
    if best is None:
        raise ValueError("no candidate inside [1, max_nc]")
    return OracleResult(
        params=best[1], throughput_mbps=best[0], evaluations=n_evals
    )


def oracle_static_nc_np(
    scenario: Scenario,
    *,
    load: ExternalLoad | LoadSchedule | None = None,
    nc_candidates: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    np_candidates: Sequence[int] = (1, 2, 4, 8, 16, 32),
    duration_s: float = 240.0,
    seed: int = 0,
) -> OracleResult:
    """2-D sweep over (nc, np)."""
    if not nc_candidates or not np_candidates:
        raise ValueError("need candidates in both dimensions")
    best: tuple[float, tuple[int, ...]] | None = None
    n_evals = 0
    for nc in nc_candidates:
        for np_ in np_candidates:
            trace = run_single(
                scenario,
                StaticTuner(params=(nc, np_)),
                load=load,
                duration_s=duration_s,
                tune_np=True,
                seed=seed,
            )
            n_evals += 1
            score = steady_state_mean(trace, tail_fraction=0.75)
            if best is None or score > best[0]:
                best = (score, (nc, np_))
    assert best is not None
    return OracleResult(
        params=best[1], throughput_mbps=best[0], evaluations=n_evals
    )
