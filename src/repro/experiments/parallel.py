"""Deterministic process-pool fan-out for independent experiment units.

Campaign units, figure cells, and seed replicates are embarrassingly
parallel: each builds its own :class:`~repro.sim.engine.Engine` from an
explicit seed and shares no mutable state with its siblings.
:func:`pool_map` runs such units in a ``ProcessPoolExecutor`` and
returns results **in input order** regardless of completion order, so a
parallel run merges into byte-identical reports/journals as the serial
one — determinism survives the fan-out because every task's randomness
is derived from its own arguments (seed, unit name), never from a
shared generator.

Workers are spawn-safe: only module-level callables and plain picklable
data cross the process boundary (the executor pickles tasks under every
start method, ``fork`` included).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob: ``None``/``0`` means all CPUs.

    Negative values are rejected — a silent fallback would hide typos in
    scripts that sweep the knob.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = all CPUs)")
    return int(jobs)


def pool_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int | None = 1,
    mp_context: str | None = None,
) -> list[R]:
    """Apply ``fn`` to every item, ``jobs`` processes wide, in order.

    ``jobs <= 1`` (or a single item) runs serially in-process — the
    zero-dependency path tests and small runs stay on.  With more,
    ``fn`` and the items must be picklable (module-level function,
    plain data); results come back in input order and a worker
    exception propagates to the caller as it would serially.

    ``mp_context`` picks the multiprocessing start method (``"spawn"``,
    ``"forkserver"``, ...); ``None`` uses the platform default.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    ctx = (multiprocessing.get_context(mp_context)
           if mp_context is not None else None)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)), mp_context=ctx
    ) as pool:
        return list(pool.map(fn, items))


def pool_imap(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int | None = 1,
    mp_context: str | None = None,
) -> Iterator[R]:
    """Like :func:`pool_map` but *streams*: each result is yielded as
    soon as it and every earlier item are done (still input order).

    The campaign journal needs this — a unit can be durably recorded
    the moment its worker result is merged instead of only after the
    whole batch drains, so a kill mid-campaign loses at most the units
    still in flight.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        for item in items:
            yield fn(item)
        return
    ctx = (multiprocessing.get_context(mp_context)
           if mp_context is not None else None)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)), mp_context=ctx
    ) as pool:
        futures = [pool.submit(fn, item) for item in items]
        for fut in futures:
            yield fut.result()


class ReplicateSeeds(Sequence[int]):
    """Lazily derived replicate seeds: ``base_seed + rep``.

    A sequence view rather than a materialized list: each seed is
    re-derived from ``(base_seed, index)`` on every access, so consumers
    that slice, re-iterate, or ship the object across a process
    boundary (pool workers, batch shards) always see the same pure
    function of the index — there is no stored state that could drift
    from the derivation rule.  Per-seed RNG *streams* are likewise
    derived on demand (:class:`~repro.sim.rng.RngStreams` spawns its
    stream seeds at construction and builds generators lazily), so a
    B-lane batch and B serial runs over the same seeds draw identical
    noise sequences.
    """

    __slots__ = ("base_seed", "reps")

    def __init__(self, base_seed: int, reps: int) -> None:
        if reps < 1:
            raise ValueError("reps must be >= 1")
        self.base_seed = int(base_seed)
        self.reps = int(reps)

    def __len__(self) -> int:
        return self.reps

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self.reps))]
        if index < 0:
            index += self.reps
        if not 0 <= index < self.reps:
            raise IndexError(f"replicate index {index} out of range")
        return self.base_seed + index

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ReplicateSeeds):
            return (self.base_seed, self.reps) == (
                other.base_seed, other.reps
            )
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.base_seed, self.reps))

    def __repr__(self) -> str:
        return f"ReplicateSeeds({self.base_seed}, {self.reps})"


def replicate_seeds(base_seed: int, reps: int) -> ReplicateSeeds:
    """Per-replicate derived seeds: ``base_seed + rep``, lazily.

    Each task's seed is a pure function of its index, so the same
    replicate set is produced at any ``jobs`` width (and at any batch
    lane width — see :class:`ReplicateSeeds`).
    """
    return ReplicateSeeds(base_seed, reps)
