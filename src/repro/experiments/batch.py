"""Batched execution of independent single-transfer runs.

:func:`run_batch` takes a list of :class:`SingleRunSpec` — one
:func:`~repro.experiments.runner.run_single` call as plain data — and
advances the batchable ones in lockstep through the struct-of-arrays
:class:`~repro.sim.batch.BatchEngine`, ``batch`` lanes at a time.  The
contract is the scalar one: every returned trace is **bit-identical**
(epochs AND steps) to ``run_single`` on the same arguments, cache keys
are the very keys ``run_single`` computes (a batch-warmed cache serves
scalar callers and vice versa), and specs the batch engine cannot
express (fault schedules, finite-bytes transfers, journals, live
instrumentation — see :func:`~repro.sim.batch.unbatchable_reason`) fall
back to their own scalar engine per spec, automatically.

:func:`run_many` composes the lane axis with the process axis: specs
are cut into one-chunk tasks (``batch`` specs each) and fanned over
``jobs`` workers, so a campaign can be wide *and* deep.  Like the run
cache, the lane width travels ambiently — :func:`batching` exports it
via the ``REPRO_BATCH`` environment variable, which pool workers
inherit — so figure generators deep in a campaign pick the width up
without threading a parameter through every signature.

Occupancy (how many runs rode a batch, how many fell back, chunk
utilization) accumulates in per-process counters, snapshot via
:func:`occupancy`; the campaign layer reports per-unit deltas and warns
when fallbacks dominate.
"""

from __future__ import annotations

import contextlib
import os
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.cache import keys as cache_keys
from repro.cache.replay import replay_traces
from repro.cache.runtime import CacheSpec, activated, resolve_cache
from repro.core.base import Tuner
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.faults import CircuitBreaker, FaultSchedule, RetryPolicy
from repro.sim.batch import BatchEngine, unbatchable_reason
from repro.sim.engine import EngineConfig
from repro.sim.trace import Trace

from repro.experiments.parallel import pool_map, resolve_jobs
from repro.experiments.runner import EPOCH_S, _schedule, build_single_engine
from repro.experiments.scenarios import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instrument import Instrumentation

__all__ = [
    "DEFAULT_BATCH",
    "DEFAULT_FALLBACK_WARN",
    "ENV_BATCH",
    "ENV_BATCH_WARN",
    "ENV_DISPATCH",
    "BatchOccupancy",
    "SingleRunSpec",
    "batching",
    "dispatch_fallback_reasons",
    "dispatch_timings",
    "fallback_reasons",
    "occupancy",
    "resolve_batch",
    "resolve_dispatch",
    "resolve_fallback_warn",
    "run_batch",
    "run_many",
]

ENV_BATCH = "REPRO_BATCH"
ENV_BATCH_WARN = "REPRO_BATCH_WARN"
ENV_DISPATCH = "REPRO_DISPATCH"

#: Campaign warning threshold: warn when more than this fraction of
#: simulated runs fell off the batch path.
DEFAULT_FALLBACK_WARN = 0.10

#: Lane width when batching is requested without a number (CLI bare
#: ``--batch``).  64 keeps the span matrices comfortably cache-resident
#: while amortizing the per-span python overhead across enough lanes.
DEFAULT_BATCH = 64


def resolve_batch(batch: int | None) -> int:
    """Normalize a ``batch=`` knob to a lane width (0 = batching off).

    ``None`` consults the ``REPRO_BATCH`` environment variable (unset
    or empty means off), so the width set by :func:`batching` — or by
    ``repro campaign --batch`` around a pool fan-out — reaches workers
    that pass ``batch=None``.  Negative widths are rejected; ``1``
    behaves like ``0`` (a one-lane batch is the scalar loop with extra
    ceremony).
    """
    if batch is None:
        raw = os.environ.get(ENV_BATCH, "").strip()
        if not raw:
            return 0
        try:
            batch = int(raw)
        except ValueError:
            raise ValueError(
                f"unrecognized {ENV_BATCH}={raw!r}; expected an integer "
                "lane width (0 disables batching)"
            ) from None
    batch = int(batch)
    if batch < 0:
        raise ValueError("batch must be >= 0 (0 = batching off)")
    return batch


def resolve_fallback_warn(value: float | None = None) -> float:
    """Normalize the campaign's batch-fallback warning threshold.

    ``None`` consults the ``REPRO_BATCH_WARN`` environment variable
    (unset or empty means the stock 10%), so operators can tighten or
    relax the warning fleet-wide without touching call sites.  The
    threshold is a fraction of simulated runs; negative values are
    rejected, and anything >= 1.0 effectively disables the warning.
    """
    if value is None:
        raw = os.environ.get(ENV_BATCH_WARN, "").strip()
        if not raw:
            return DEFAULT_FALLBACK_WARN
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"unrecognized {ENV_BATCH_WARN}={raw!r}; expected a "
                "fraction of simulated runs (e.g. 0.10)"
            ) from None
    value = float(value)
    if value < 0.0:
        raise ValueError("batch fallback warn threshold must be >= 0")
    return value


def resolve_dispatch(dispatch: bool | None = None) -> bool:
    """Normalize the population-dispatch knob (default: on).

    ``None`` consults the ``REPRO_DISPATCH`` environment variable —
    unset or empty means on; ``0``/``off``/``false``/``no`` disable it
    (every lane keeps the scalar per-epoch ladder, the pre-population
    baseline the dispatch bench compares against); ``1``/``on``/
    ``true``/``yes`` force it on.  Results are bit-identical either
    way — the knob trades dispatch throughput only.
    """
    if dispatch is not None:
        return bool(dispatch)
    raw = os.environ.get(ENV_DISPATCH, "").strip().lower()
    if not raw:
        return True
    if raw in ("0", "off", "false", "no"):
        return False
    if raw in ("1", "on", "true", "yes"):
        return True
    raise ValueError(
        f"unrecognized {ENV_DISPATCH}={raw!r}; expected on/off"
    )


@contextlib.contextmanager
def batching(batch: int | None) -> Iterator[int]:
    """Export a lane-width decision to this process *and* its children.

    ``None`` leaves the ambient setting (if any) in force; ``0`` forces
    batching off for the scope, pool workers included; a positive width
    enables it.  Yields the resolved width; always restores the
    previous environment on exit.  The exact analogue of
    :func:`repro.cache.runtime.activated` for the batch axis.
    """
    if batch is None:
        yield resolve_batch(None)
        return
    width = resolve_batch(batch)
    saved = os.environ.get(ENV_BATCH)
    os.environ[ENV_BATCH] = str(width)
    try:
        yield width
    finally:
        if saved is None:
            os.environ.pop(ENV_BATCH, None)
        else:
            os.environ[ENV_BATCH] = saved


@dataclass(frozen=True)
class SingleRunSpec:
    """One :func:`~repro.experiments.runner.run_single` call as data.

    Field names, types, and defaults mirror ``run_single``'s signature
    exactly (minus the per-call plumbing — ``journal``/``obs``/``cache``
    — which stays on the executor), so a spec list is a declarative
    sweep and the cache key of a spec is the key the equivalent scalar
    call computes.
    """

    scenario: Scenario
    tuner: Tuner
    load: ExternalLoad | LoadSchedule | None = None
    duration_s: float = 1800.0
    epoch_s: float = EPOCH_S
    tune_np: bool = False
    fixed_np: int = 8
    x0: tuple[int, ...] | None = None
    seed: int = 0
    max_nc: int = 512
    fault_schedule: FaultSchedule | None = None
    retry_policy: RetryPolicy | None = None
    breaker: CircuitBreaker | None = None
    fast_path: bool = True


@dataclass(frozen=True)
class BatchOccupancy:
    """How a population of runs was executed (per-process totals).

    ``batched``/``fallback`` count *simulated* runs by path; ``cached``
    runs did no simulation at all; ``chunks`` is the number of
    :class:`~repro.sim.batch.BatchEngine` instances launched, so
    ``batched / chunks`` is the realized lane occupancy.
    """

    batched: int = 0
    fallback: int = 0
    cached: int = 0
    chunks: int = 0

    def __add__(self, other: "BatchOccupancy") -> "BatchOccupancy":
        return BatchOccupancy(
            self.batched + other.batched, self.fallback + other.fallback,
            self.cached + other.cached, self.chunks + other.chunks,
        )

    def __sub__(self, other: "BatchOccupancy") -> "BatchOccupancy":
        return BatchOccupancy(
            self.batched - other.batched, self.fallback - other.fallback,
            self.cached - other.cached, self.chunks - other.chunks,
        )

    @property
    def simulated(self) -> int:
        return self.batched + self.fallback

    @property
    def fallback_rate(self) -> float:
        """Fraction of simulated runs that fell back to the scalar
        engine (0.0 when nothing was simulated)."""
        return self.fallback / self.simulated if self.simulated else 0.0

    @property
    def runs_per_chunk(self) -> float:
        """Realized lanes per launched batch (0.0 without batches)."""
        return self.batched / self.chunks if self.chunks else 0.0

    def to_dict(self) -> dict:
        """JSON-ready snapshot (status documents, bench results)."""
        return {
            "batched": self.batched,
            "fallback": self.fallback,
            "cached": self.cached,
            "chunks": self.chunks,
            "fallback_rate": self.fallback_rate,
            "runs_per_chunk": self.runs_per_chunk,
        }


#: Per-process occupancy totals (the batch analogue of the cache's
#: hit/miss counters): every width>1 ``run_batch`` call accumulates
#: here, and the campaign layer reads per-unit deltas.  Pool workers
#: each carry their own totals, exactly like :attr:`RunCache.key_log`.
_counts = BatchOccupancy()
_fallback_reasons: Counter = Counter()
#: Advisory per-lane dispatch fallbacks (``dispatch:*`` reasons from
#: :mod:`repro.sim.batch.eligibility`) — kept SEPARATE from the batch
#: fallback tally above, whose values sum to the occupancy's
#: ``fallback`` count (a dispatch-fallback lane still rode the batch).
_dispatch_reasons: Counter = Counter()
_dispatch_lanes: Counter = Counter()
_phase_s: Counter = Counter()


def occupancy() -> BatchOccupancy:
    """Snapshot of this process's cumulative batch occupancy."""
    return _counts


def fallback_reasons() -> dict[str, int]:
    """Per-reason fallback counts accumulated in this process."""
    return dict(_fallback_reasons)


def dispatch_fallback_reasons() -> dict[str, int]:
    """Per-reason tally of batch lanes whose window-end dispatches kept
    the scalar ladder instead of a tuner population, once per lane
    (``dispatch:*`` reasons).  Advisory: these lanes still rode the
    vectorized spans."""
    return dict(_dispatch_reasons)


def dispatch_timings() -> dict:
    """Cumulative per-phase wall seconds of this process's batch runs
    (span advance vs epoch close vs tuner dispatch) plus the dispatch
    routing split (population vs ladder lanes)."""
    return {
        "phase_s": {
            "span": float(_phase_s["span"]),
            "close": float(_phase_s["close"]),
            "dispatch": float(_phase_s["dispatch"]),
        },
        "population_lanes": int(_dispatch_lanes["population"]),
        "ladder_lanes": int(_dispatch_lanes["ladder"]),
    }


def _harvest_engine(engine: BatchEngine) -> None:
    """Fold one finished batch engine's dispatch/timing accounting into
    the per-process counters."""
    _phase_s.update(engine.phase_s)
    d = engine.dispatcher
    if d is not None:
        _dispatch_reasons.update(d.fallback_reasons)
        _dispatch_lanes["population"] += d.population_lanes
        _dispatch_lanes["ladder"] += d.ladder_lanes


def _spec_key(spec: SingleRunSpec, schedule: LoadSchedule,
              config: EngineConfig) -> str:
    """The spec's content address — ``run_single``'s key, verbatim."""
    return cache_keys.run_key("single", cache_keys.single_run_components(
        scenario=spec.scenario, tuner=spec.tuner, schedule=schedule,
        duration_s=spec.duration_s, epoch_s=spec.epoch_s,
        tune_np=spec.tune_np, fixed_np=spec.fixed_np, x0=spec.x0,
        seed=spec.seed, max_nc=spec.max_nc,
        fault_schedule=spec.fault_schedule,
        retry_policy=spec.retry_policy, breaker=spec.breaker,
        engine_config=config,
    ))


def _spec_engine(spec: SingleRunSpec, schedule: LoadSchedule,
                 obs: "Instrumentation | None"):
    return build_single_engine(
        spec.scenario, spec.tuner, schedule=schedule,
        duration_s=spec.duration_s, epoch_s=spec.epoch_s,
        tune_np=spec.tune_np, fixed_np=spec.fixed_np, x0=spec.x0,
        seed=spec.seed, max_nc=spec.max_nc,
        fault_schedule=spec.fault_schedule,
        retry_policy=spec.retry_policy, breaker=spec.breaker,
        fast_path=spec.fast_path, obs=obs,
    )


def _spec_meta(spec: SingleRunSpec) -> dict:
    return {
        "kind": "single", "scenario": spec.scenario.name,
        "tuner": spec.tuner.name, "seed": int(spec.seed),
        "duration_s": float(spec.duration_s),
    }


def run_batch(
    specs: Iterable[SingleRunSpec],
    *,
    batch: int | None = None,
    cache: CacheSpec = None,
    obs: "Instrumentation | None" = None,
    dispatch: bool | None = None,
    batched_close: bool = True,
) -> list[Trace]:
    """Run every spec; returns one trace per spec, in spec order.

    Cache hits are collected first through one batched
    :meth:`~repro.cache.store.RunCache.get_traces_many` probe (the keys
    are ``run_single``'s, so batch and scalar callers share entries and
    hit/miss accounting matches a spec-by-spec probe).  Remaining specs
    become fresh engines; the batchable ones advance ``batch`` lanes at
    a time through :class:`~repro.sim.batch.BatchEngine` with
    allocation-memo groups shared per ``(scenario, tune_np, fixed_np)``
    substrate, and the rest run their own scalar engine.  Either way
    every result is bit-identical — epochs AND steps — to the
    equivalent ``run_single`` call, and computed results are stored
    under the shared keys.

    ``batch=None`` consults the ambient width (:func:`batching` /
    ``REPRO_BATCH``); width <= 1 degrades to the plain scalar loop
    without charging occupancy counters.  An *active* ``obs`` forces
    every simulated spec onto the scalar path (live instrumentation is
    outside the batch engine's contract) with events emitted live, and
    cache hits replay their event stream exactly as ``run_single``
    does.  ``dispatch`` gates population dispatch inside the batch
    engine (:func:`resolve_dispatch`; default on, bit-identical off);
    ``batched_close=False`` likewise restores the per-lane scalar
    window boundary (the dispatch micro-bench's baseline knob).
    """
    global _counts
    specs = list(specs)
    if not specs:
        return []
    width = resolve_batch(batch)
    schedules = [_schedule(s.load) for s in specs]
    configs = [
        EngineConfig(seed=s.seed, fast_path=s.fast_path) for s in specs
    ]
    store = resolve_cache(cache)
    results: list[Trace | None] = [None] * len(specs)
    keys: list[str | None] = [None] * len(specs)
    ncached = 0
    if store is not None:
        if obs is not None and obs.metrics is not None:
            store.bind_metrics(obs.metrics)
        if obs is not None and obs.active:
            store.bind_bus(obs.bus)
        for i, spec in enumerate(specs):
            keys[i] = _spec_key(spec, schedules[i], configs[i])
        hits = store.get_traces_many(dict.fromkeys(keys))
        for i, key in enumerate(keys):
            traces = hits.get(key)
            if traces is not None and "main" in traces:
                replay_traces(obs, traces)
                results[i] = traces["main"]
                ncached += 1

    pending = [i for i in range(len(specs)) if results[i] is None]
    engines = {i: _spec_engine(specs[i], schedules[i], obs) for i in pending}

    def finish(i: int, traces: dict[str, Trace]) -> None:
        results[i] = traces["main"]
        if store is not None and keys[i] is not None:
            store.put_traces(keys[i], traces, meta=_spec_meta(specs[i]))

    if width <= 1:
        # Batching off: the plain scalar loop.  Occupancy is not
        # charged — nothing *fell back*, batching was never requested.
        for i in pending:
            finish(i, engines[i].run())
        return results  # type: ignore[return-value]

    lanes: list[int] = []
    fellback: list[int] = []
    for i in pending:
        reason = unbatchable_reason(engines[i])
        if reason is None:
            lanes.append(i)
        else:
            fellback.append(i)
            _fallback_reasons[reason] += 1

    # Lanes built on the same substrate (scenario singleton + parameter
    # mapping) share allocation-memo entries — the dominant lever on
    # batch throughput for seed replicates.  Scenario identity is
    # stable for the call's duration (specs hold strong references).
    groups: dict[tuple, int] = {}

    def group_of(spec: SingleRunSpec) -> int:
        key = (id(spec.scenario), spec.tune_np, spec.fixed_np)
        return groups.setdefault(key, len(groups))

    dispatch_on = resolve_dispatch(dispatch)
    nchunks = 0
    for lo in range(0, len(lanes), width):
        chunk = lanes[lo:lo + width]
        engine = BatchEngine(
            [engines[i] for i in chunk],
            alloc_groups=[group_of(specs[i]) for i in chunk],
            population_dispatch=dispatch_on,
            batched_close=batched_close,
        )
        for i, traces in zip(chunk, engine.run()):
            finish(i, traces)
        _harvest_engine(engine)
        nchunks += 1
    for i in fellback:
        finish(i, engines[i].run())
    _counts = _counts + BatchOccupancy(
        batched=len(lanes), fallback=len(fellback),
        cached=ncached, chunks=nchunks,
    )
    return results  # type: ignore[return-value]


def _run_chunk(task: tuple[tuple[SingleRunSpec, ...], int]) -> list[Trace]:
    """One pool task: a chunk of specs at a fixed width (module-level
    so it pickles; the chunk's specs travel together, so shared
    scenario/tuner objects stay shared after unpickling and the
    allocation-group keying by identity still coalesces them)."""
    chunk, width = task
    return run_batch(list(chunk), batch=width)


def run_many(
    specs: Iterable[SingleRunSpec],
    *,
    jobs: int | None = 1,
    batch: int | None = None,
    cache: CacheSpec = None,
) -> list[Trace]:
    """Fan a spec list over processes *and* lanes; traces in spec order.

    The two axes compose: specs are cut into chunks of ``batch`` (one
    :class:`~repro.sim.batch.BatchEngine` launch each; single specs
    when batching is off) and the chunks are distributed over ``jobs``
    processes by :func:`~repro.experiments.parallel.pool_map`.  Results
    are bit-identical at every ``(jobs, batch)`` combination, so the
    figure generators route through here unconditionally.  ``cache``
    activates the run cache for the scope, workers included
    (:func:`~repro.cache.runtime.activated`); occupancy counters
    accumulate in whichever process ran the chunk.
    """
    specs = list(specs)
    width = resolve_batch(batch)
    njobs = resolve_jobs(jobs)
    with activated(cache):
        if njobs <= 1 or len(specs) <= 1:
            return run_batch(specs, batch=width)
        size = max(1, width)
        tasks = [
            (tuple(specs[lo:lo + size]), width)
            for lo in range(0, len(specs), size)
        ]
        out: list[Trace] = []
        for chunk_traces in pool_map(_run_chunk, tasks, jobs=njobs):
            out.extend(chunk_traces)
        return out
