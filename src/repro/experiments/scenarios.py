"""Calibrated testbed scenarios.

Two production WAN settings from the paper:

* **ANL → UChicago** — 40 Gb/s NICs at both ends (5000 MB/s), metro-area
  RTT, shared path with measurable loss that grows with the stream count.
  Calibrated so that ~16 streams move ~2500 MB/s (the paper's default),
  ~40 streams ~4000 MB/s (the tuners' plateau in Fig. 5a), and the Fig. 1
  unimodal curve peaks at 64 streams.
* **ANL → TACC** — 20 Gb/s path (2500 MB/s), RTT 33 ms, very clean
  (ESnet); per-stream rate is socket-buffer-limited to ~120 MB/s, which
  reproduces the paper's observation that the default's 16 streams reach
  1900 MB/s and tuning adds little without external load.

Both use the same Nehalem source host whose CPU constants are calibrated
against the external-compute-load results (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.base import StaticTuner, Tuner
from repro.core.cd_tuner import CdTuner
from repro.core.cs_tuner import CsTuner
from repro.core.heuristics import default_globus_params
from repro.core.nm_tuner import NmTuner
from repro.endpoint.host import NEHALEM, HostSpec
from repro.net.link import Link, Path
from repro.net.tcp import HTCP, TcpModel
from repro.net.topology import Topology
from repro.units import MB

#: Shared source NIC at ANL: 40 Gb/s.
ANL_NIC = Link(name="anl-nic", capacity_mbps=5000.0)
#: WAN segment to UChicago: 40 Gb/s end to end.
WAN_UC = Link(name="wan-uc", capacity_mbps=5000.0)
#: WAN segment to TACC: 20 Gb/s.
WAN_TACC = Link(name="wan-tacc", capacity_mbps=2500.0)

#: H-TCP (the paper's endpoints) with 4 MB socket buffers and a 2 s
#: slow-start ramp time constant.
_TCP = TcpModel(cc=HTCP, wmax_bytes=4.0 * MB, slow_start_tau=2.0)

PATH_ANL_UC = Path(
    name="anl-uc",
    links=(ANL_NIC, WAN_UC),
    rtt_ms=2.0,
    loss_rate=1e-6,
    loss_per_stream=2.7e-6,
    tcp=_TCP,
)

PATH_ANL_TACC = Path(
    name="anl-tacc",
    links=(ANL_NIC, WAN_TACC),
    rtt_ms=33.0,
    loss_rate=1e-8,
    loss_per_stream=1e-8,
    tcp=_TCP,
)


@dataclass(frozen=True)
class Scenario:
    """One source host plus the paths reachable from it."""

    name: str
    host: HostSpec
    main_path: str
    paths: tuple[Path, ...] = field(default=(PATH_ANL_UC, PATH_ANL_TACC))
    #: One-line description for ``repro info`` listings.
    doc: str = ""

    def __post_init__(self) -> None:
        if self.main_path not in {p.name for p in self.paths}:
            raise ValueError(
                f"main_path {self.main_path!r} not among scenario paths"
            )

    def build_topology(self) -> Topology:
        """A fresh Topology (Topology is mutable; never share one)."""
        topo = Topology()
        for p in self.paths:
            topo.add_path(p)
        return topo

    def path(self, name: str | None = None) -> Path:
        target = name if name is not None else self.main_path
        for p in self.paths:
            if p.name == target:
                return p
        raise KeyError(f"no path {target!r} in scenario {self.name!r}")

    def with_host(self, host: HostSpec) -> "Scenario":
        return replace(self, host=host)


ANL_UC = Scenario(
    name="anl-uc", host=NEHALEM, main_path="anl-uc",
    doc="ANL -> UChicago: 40 Gb/s metro path, lossy when oversubscribed.",
)
ANL_TACC = Scenario(
    name="anl-tacc", host=NEHALEM, main_path="anl-tacc",
    doc="ANL -> TACC: clean 20 Gb/s ESnet path, RTT 33 ms, "
        "buffer-limited streams.",
)

#: Named scenarios — shared by the CLI and checkpoint/resume (a journal
#: header records the scenario by name, so the registry must be stable).
SCENARIOS: dict[str, Scenario] = {s.name: s for s in (ANL_UC, ANL_TACC)}


def standard_tuners(*, seed: int = 0, eps_pct: float = 5.0) -> dict[str, Tuner]:
    """The four methods of §IV-A with the paper's settings: ε=5%, λ=8,
    (R, E, C, S) = (1, 2, 0.5, 0.5)."""
    return {
        "default": StaticTuner(),
        "cd-tuner": CdTuner(eps_pct=eps_pct),
        "cs-tuner": CsTuner(eps_pct=eps_pct, lam0=8.0, seed=seed),
        "nm-tuner": NmTuner(eps_pct=eps_pct),
    }


def default_start(ndim: int = 1) -> tuple[int, ...]:
    """Starting point built from the Globus defaults: nc=2 (and np=8 when
    parallelism is tuned too)."""
    nc, np_ = default_globus_params()
    if ndim == 1:
        return (nc,)
    if ndim == 2:
        return (nc, np_)
    raise ValueError("only 1-D (nc) and 2-D (nc, np) starts are defined")
