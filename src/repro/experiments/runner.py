"""Run experiments: one transfer, a simultaneous pair, or a jointly tuned
set, on a scenario under a load schedule."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.cache import keys as cache_keys
from repro.cache.replay import replay_traces
from repro.cache.runtime import CacheSpec, resolve_cache
from repro.core.aggregate import JointTuner
from repro.core.base import Tuner
from repro.core.params import (
    ParamSpace,
    concurrency_parallelism_space,
    concurrency_space,
)
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.faults import CircuitBreaker, FaultSchedule, RetryPolicy
from repro.gridftp.transfer import TransferSpec
from repro.sim.engine import Engine, EngineConfig, JointController
from repro.sim.session import ParamMap, TransferSession
from repro.sim.trace import Trace

from repro.experiments.scenarios import Scenario, default_start

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cache.store import RunCache
    from repro.checkpoint.journal import JournalWriter
    from repro.obs.instrument import Instrumentation

#: Paper control epoch: 30 s.
EPOCH_S = 30.0


def _cache_get(
    store: "RunCache | None",
    key: str | None,
    obs: "Instrumentation | None" = None,
) -> dict[str, Trace] | None:
    """One cache probe: bind telemetry, fetch, replay events on a hit."""
    if store is None or key is None:
        return None
    if obs is not None and obs.metrics is not None:
        store.bind_metrics(obs.metrics)
    if obs is not None and obs.active:
        # Backend degradations/breaker trips surface on the run's bus.
        store.bind_bus(obs.bus)
    traces = store.get_traces(key)
    if traces is not None:
        replay_traces(obs, traces)
    return traces


def _space_and_map(
    tune_np: bool, fixed_np: int, max_nc: int
) -> tuple[ParamSpace, ParamMap]:
    if tune_np:
        return concurrency_parallelism_space(max_nc=max_nc), ParamMap.nc_np()
    return concurrency_space(max_nc=max_nc), ParamMap.nc_only(fixed_np=fixed_np)


def _schedule(
    load: ExternalLoad | LoadSchedule | None,
) -> LoadSchedule:
    if load is None:
        return LoadSchedule.constant(ExternalLoad())
    if isinstance(load, ExternalLoad):
        return LoadSchedule.constant(load)
    return load


def make_session(
    name: str,
    path_name: str,
    tuner: Tuner,
    *,
    duration_s: float,
    epoch_s: float = EPOCH_S,
    tune_np: bool = False,
    fixed_np: int = 8,
    max_nc: int = 512,
    x0: tuple[int, ...] | None = None,
    fault_schedule: FaultSchedule | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
) -> TransferSession:
    """Build a session with the paper's conventions.

    The paper's tuners restart the tool each control epoch; set-and-hold
    methods (the static default, the model-based baselines) only restart
    on an actual parameter change — governed by the tuner's
    ``restarts_every_epoch`` trait.
    """
    space, pmap = _space_and_map(tune_np, fixed_np, max_nc)
    start = x0 if x0 is not None else default_start(space.ndim)
    spec = TransferSpec(
        name=name,
        path_name=path_name,
        total_bytes=math.inf,
        max_duration_s=duration_s,
        epoch_s=epoch_s,
    )
    return TransferSession(
        spec,
        tuner,
        space,
        start,
        param_map=pmap,
        restart_each_epoch=tuner.restarts_every_epoch,
        fault_schedule=fault_schedule,
        retry_policy=retry_policy,
        breaker=breaker,
    )


def build_single_engine(
    scenario: Scenario,
    tuner: Tuner,
    *,
    schedule: LoadSchedule,
    duration_s: float,
    epoch_s: float = EPOCH_S,
    tune_np: bool = False,
    fixed_np: int = 8,
    x0: tuple[int, ...] | None = None,
    seed: int = 0,
    max_nc: int = 512,
    fault_schedule: FaultSchedule | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    fast_path: bool = True,
    journal: "JournalWriter | None" = None,
    obs: "Instrumentation | None" = None,
) -> Engine:
    """One ``"main"``-session engine exactly as :func:`run_single` builds
    it — shared with the batch runner (:mod:`repro.experiments.batch`)
    so the scalar and batched paths simulate the identical system."""
    session = make_session(
        "main",
        scenario.main_path,
        tuner,
        duration_s=duration_s,
        epoch_s=epoch_s,
        tune_np=tune_np,
        fixed_np=fixed_np,
        max_nc=max_nc,
        x0=x0,
        fault_schedule=fault_schedule,
        retry_policy=retry_policy,
        breaker=breaker,
    )
    return Engine(
        topology=scenario.build_topology(),
        host=scenario.host,
        sessions=[session],
        schedule=schedule,
        config=EngineConfig(seed=seed, fast_path=fast_path),
        journal=journal,
        obs=obs,
    )


def run_single(
    scenario: Scenario,
    tuner: Tuner,
    *,
    load: ExternalLoad | LoadSchedule | None = None,
    duration_s: float = 1800.0,
    epoch_s: float = EPOCH_S,
    tune_np: bool = False,
    fixed_np: int = 8,
    x0: tuple[int, ...] | None = None,
    seed: int = 0,
    max_nc: int = 512,
    fault_schedule: FaultSchedule | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    journal: "JournalWriter | None" = None,
    obs: "Instrumentation | None" = None,
    fast_path: bool = True,
    cache: CacheSpec = None,
) -> Trace:
    """One transfer on the scenario's main path; returns its trace.

    ``fault_schedule``/``retry_policy``/``breaker`` inject a fault
    campaign and its recovery machinery (:mod:`repro.faults`);
    ``journal`` makes the run crash-safe (the caller owns the writer —
    use :func:`repro.checkpoint.run_journaled` for the turnkey header +
    resume flow); ``obs`` attaches the observability bundle
    (:mod:`repro.obs`); ``fast_path=False`` runs the engine's reference
    step pipeline (bit-identical, slower — the equivalence baseline).

    ``cache`` routes the run through the content-addressed result cache
    (:mod:`repro.cache`): a store, ``True`` (default store), ``False``
    (off), or ``None`` (the ``REPRO_CACHE`` environment decides).
    Cached results are bit-identical to simulated ones — epochs AND
    steps.  Journaled runs bypass the cache: a journal's value *is* the
    engine's epoch-by-epoch execution record."""
    schedule = _schedule(load)
    config = EngineConfig(seed=seed, fast_path=fast_path)
    store = resolve_cache(cache) if journal is None else None
    key = None
    if store is not None:
        key = cache_keys.run_key("single", cache_keys.single_run_components(
            scenario=scenario, tuner=tuner, schedule=schedule,
            duration_s=duration_s, epoch_s=epoch_s, tune_np=tune_np,
            fixed_np=fixed_np, x0=x0, seed=seed, max_nc=max_nc,
            fault_schedule=fault_schedule, retry_policy=retry_policy,
            breaker=breaker, engine_config=config,
        ))
        hit = _cache_get(store, key, obs)
        if hit is not None and "main" in hit:
            return hit["main"]
    engine = build_single_engine(
        scenario,
        tuner,
        schedule=schedule,
        duration_s=duration_s,
        epoch_s=epoch_s,
        tune_np=tune_np,
        fixed_np=fixed_np,
        x0=x0,
        seed=seed,
        max_nc=max_nc,
        fault_schedule=fault_schedule,
        retry_policy=retry_policy,
        breaker=breaker,
        fast_path=fast_path,
        journal=journal,
        obs=obs,
    )
    traces = engine.run()
    if store is not None and key is not None:
        store.put_traces(key, traces, meta={
            "kind": "single", "scenario": scenario.name,
            "tuner": tuner.name, "seed": int(seed),
            "duration_s": float(duration_s),
        })
    return traces["main"]


def run_pair(
    scenario: Scenario,
    tuner_a: Tuner,
    tuner_b: Tuner,
    *,
    path_a: str,
    path_b: str,
    load: ExternalLoad | LoadSchedule | None = None,
    duration_s: float = 1800.0,
    epoch_s: float = EPOCH_S,
    tune_np: bool = True,
    seed: int = 0,
    fast_path: bool = True,
    cache: CacheSpec = None,
) -> dict[str, Trace]:
    """Two independently tuned transfers sharing the source (Fig. 11).

    Each tuner sees only its own transfer's throughput and treats the
    other transfer as external load.  ``cache`` works as in
    :func:`run_single`; both coupled traces are stored under one key.
    """
    schedule = _schedule(load)
    config = EngineConfig(seed=seed, fast_path=fast_path)
    store = resolve_cache(cache)
    key = None
    if store is not None:
        key = cache_keys.run_key("pair", cache_keys.pair_run_components(
            scenario=scenario, tuner_a=tuner_a, tuner_b=tuner_b,
            path_a=path_a, path_b=path_b, schedule=schedule,
            duration_s=duration_s, epoch_s=epoch_s, tune_np=tune_np,
            seed=seed, engine_config=config,
        ))
        hit = _cache_get(store, key)
        if hit is not None:
            return hit
    sessions = [
        make_session(
            "xfer-a", path_a, tuner_a, duration_s=duration_s,
            epoch_s=epoch_s, tune_np=tune_np,
        ),
        make_session(
            "xfer-b", path_b, tuner_b, duration_s=duration_s,
            epoch_s=epoch_s, tune_np=tune_np,
        ),
    ]
    engine = Engine(
        topology=scenario.build_topology(),
        host=scenario.host,
        sessions=sessions,
        schedule=schedule,
        config=config,
    )
    traces = engine.run()
    if store is not None and key is not None:
        store.put_traces(key, traces, meta={
            "kind": "pair", "scenario": scenario.name, "seed": int(seed),
            "duration_s": float(duration_s),
        })
    return traces


def run_joint(
    scenario: Scenario,
    inner: Tuner,
    *,
    path_a: str,
    path_b: str,
    load: ExternalLoad | LoadSchedule | None = None,
    duration_s: float = 1800.0,
    epoch_s: float = EPOCH_S,
    tune_np: bool = True,
    seed: int = 0,
    fast_path: bool = True,
    cache: CacheSpec = None,
) -> dict[str, Trace]:
    """Two transfers tuned *jointly* at the endpoint level (extension,
    paper §IV-D): one direct-search instance maximizes their combined
    throughput.  ``cache`` works as in :func:`run_single`."""
    schedule = _schedule(load)
    config = EngineConfig(seed=seed, fast_path=fast_path)
    store = resolve_cache(cache)
    key = None
    if store is not None:
        key = cache_keys.run_key("joint", cache_keys.joint_run_components(
            scenario=scenario, inner=inner, path_a=path_a, path_b=path_b,
            schedule=schedule, duration_s=duration_s, epoch_s=epoch_s,
            tune_np=tune_np, seed=seed, engine_config=config,
        ))
        hit = _cache_get(store, key)
        if hit is not None:
            return hit
    sessions = [
        _controller_session("xfer-a", path_a, duration_s, epoch_s, tune_np),
        _controller_session("xfer-b", path_b, duration_s, epoch_s, tune_np),
    ]
    joint = JointTuner(
        inner=inner,
        subspaces=[sessions[0].space, sessions[1].space],
        labels=["a", "b"],
    )
    x0 = joint.join(
        [default_start(sessions[0].space.ndim), default_start(sessions[1].space.ndim)]
    )
    controller = JointController(joint, [s.name for s in sessions], x0)
    engine = Engine(
        topology=scenario.build_topology(),
        host=scenario.host,
        sessions=sessions,
        schedule=schedule,
        controllers=[controller],
        config=config,
    )
    traces = engine.run()
    if store is not None and key is not None:
        store.put_traces(key, traces, meta={
            "kind": "joint", "scenario": scenario.name, "seed": int(seed),
            "duration_s": float(duration_s),
        })
    return traces


def _controller_session(
    name: str,
    path_name: str,
    duration_s: float,
    epoch_s: float,
    tune_np: bool,
) -> TransferSession:
    """A session without its own tuner (controlled by a JointController)."""
    space, pmap = _space_and_map(tune_np, fixed_np=8, max_nc=512)
    spec = TransferSpec(
        name=name,
        path_name=path_name,
        total_bytes=math.inf,
        max_duration_s=duration_s,
        epoch_s=epoch_s,
    )
    return TransferSession(
        spec, None, space, default_start(space.ndim), param_map=pmap
    )
