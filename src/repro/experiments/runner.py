"""Run experiments: one transfer, a simultaneous pair, or a jointly tuned
set, on a scenario under a load schedule."""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.aggregate import JointTuner
from repro.core.base import Tuner
from repro.core.params import (
    ParamSpace,
    concurrency_parallelism_space,
    concurrency_space,
)
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.faults import CircuitBreaker, FaultSchedule, RetryPolicy
from repro.gridftp.transfer import TransferSpec
from repro.sim.engine import Engine, EngineConfig, JointController
from repro.sim.session import ParamMap, TransferSession
from repro.sim.trace import Trace

from repro.experiments.scenarios import Scenario, default_start

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.checkpoint.journal import JournalWriter
    from repro.obs.instrument import Instrumentation

#: Paper control epoch: 30 s.
EPOCH_S = 30.0


def _space_and_map(
    tune_np: bool, fixed_np: int, max_nc: int
) -> tuple[ParamSpace, ParamMap]:
    if tune_np:
        return concurrency_parallelism_space(max_nc=max_nc), ParamMap.nc_np()
    return concurrency_space(max_nc=max_nc), ParamMap.nc_only(fixed_np=fixed_np)


def _schedule(
    load: ExternalLoad | LoadSchedule | None,
) -> LoadSchedule:
    if load is None:
        return LoadSchedule.constant(ExternalLoad())
    if isinstance(load, ExternalLoad):
        return LoadSchedule.constant(load)
    return load


def make_session(
    name: str,
    path_name: str,
    tuner: Tuner,
    *,
    duration_s: float,
    epoch_s: float = EPOCH_S,
    tune_np: bool = False,
    fixed_np: int = 8,
    max_nc: int = 512,
    x0: tuple[int, ...] | None = None,
    fault_schedule: FaultSchedule | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
) -> TransferSession:
    """Build a session with the paper's conventions.

    The paper's tuners restart the tool each control epoch; set-and-hold
    methods (the static default, the model-based baselines) only restart
    on an actual parameter change — governed by the tuner's
    ``restarts_every_epoch`` trait.
    """
    space, pmap = _space_and_map(tune_np, fixed_np, max_nc)
    start = x0 if x0 is not None else default_start(space.ndim)
    spec = TransferSpec(
        name=name,
        path_name=path_name,
        total_bytes=math.inf,
        max_duration_s=duration_s,
        epoch_s=epoch_s,
    )
    return TransferSession(
        spec,
        tuner,
        space,
        start,
        param_map=pmap,
        restart_each_epoch=tuner.restarts_every_epoch,
        fault_schedule=fault_schedule,
        retry_policy=retry_policy,
        breaker=breaker,
    )


def run_single(
    scenario: Scenario,
    tuner: Tuner,
    *,
    load: ExternalLoad | LoadSchedule | None = None,
    duration_s: float = 1800.0,
    epoch_s: float = EPOCH_S,
    tune_np: bool = False,
    fixed_np: int = 8,
    x0: tuple[int, ...] | None = None,
    seed: int = 0,
    max_nc: int = 512,
    fault_schedule: FaultSchedule | None = None,
    retry_policy: RetryPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    journal: "JournalWriter | None" = None,
    obs: "Instrumentation | None" = None,
    fast_path: bool = True,
) -> Trace:
    """One transfer on the scenario's main path; returns its trace.

    ``fault_schedule``/``retry_policy``/``breaker`` inject a fault
    campaign and its recovery machinery (:mod:`repro.faults`);
    ``journal`` makes the run crash-safe (the caller owns the writer —
    use :func:`repro.checkpoint.run_journaled` for the turnkey header +
    resume flow); ``obs`` attaches the observability bundle
    (:mod:`repro.obs`); ``fast_path=False`` runs the engine's reference
    step pipeline (bit-identical, slower — the equivalence baseline)."""
    session = make_session(
        "main",
        scenario.main_path,
        tuner,
        duration_s=duration_s,
        epoch_s=epoch_s,
        tune_np=tune_np,
        fixed_np=fixed_np,
        max_nc=max_nc,
        x0=x0,
        fault_schedule=fault_schedule,
        retry_policy=retry_policy,
        breaker=breaker,
    )
    engine = Engine(
        topology=scenario.build_topology(),
        host=scenario.host,
        sessions=[session],
        schedule=_schedule(load),
        config=EngineConfig(seed=seed, fast_path=fast_path),
        journal=journal,
        obs=obs,
    )
    return engine.run()["main"]


def run_pair(
    scenario: Scenario,
    tuner_a: Tuner,
    tuner_b: Tuner,
    *,
    path_a: str,
    path_b: str,
    load: ExternalLoad | LoadSchedule | None = None,
    duration_s: float = 1800.0,
    epoch_s: float = EPOCH_S,
    tune_np: bool = True,
    seed: int = 0,
    fast_path: bool = True,
) -> dict[str, Trace]:
    """Two independently tuned transfers sharing the source (Fig. 11).

    Each tuner sees only its own transfer's throughput and treats the
    other transfer as external load.
    """
    sessions = [
        make_session(
            "xfer-a", path_a, tuner_a, duration_s=duration_s,
            epoch_s=epoch_s, tune_np=tune_np,
        ),
        make_session(
            "xfer-b", path_b, tuner_b, duration_s=duration_s,
            epoch_s=epoch_s, tune_np=tune_np,
        ),
    ]
    engine = Engine(
        topology=scenario.build_topology(),
        host=scenario.host,
        sessions=sessions,
        schedule=_schedule(load),
        config=EngineConfig(seed=seed, fast_path=fast_path),
    )
    return engine.run()


def run_joint(
    scenario: Scenario,
    inner: Tuner,
    *,
    path_a: str,
    path_b: str,
    load: ExternalLoad | LoadSchedule | None = None,
    duration_s: float = 1800.0,
    epoch_s: float = EPOCH_S,
    tune_np: bool = True,
    seed: int = 0,
    fast_path: bool = True,
) -> dict[str, Trace]:
    """Two transfers tuned *jointly* at the endpoint level (extension,
    paper §IV-D): one direct-search instance maximizes their combined
    throughput."""
    sessions = [
        _controller_session("xfer-a", path_a, duration_s, epoch_s, tune_np),
        _controller_session("xfer-b", path_b, duration_s, epoch_s, tune_np),
    ]
    joint = JointTuner(
        inner=inner,
        subspaces=[sessions[0].space, sessions[1].space],
        labels=["a", "b"],
    )
    x0 = joint.join(
        [default_start(sessions[0].space.ndim), default_start(sessions[1].space.ndim)]
    )
    controller = JointController(joint, [s.name for s in sessions], x0)
    engine = Engine(
        topology=scenario.build_topology(),
        host=scenario.host,
        sessions=sessions,
        schedule=_schedule(load),
        controllers=[controller],
        config=EngineConfig(seed=seed, fast_path=fast_path),
    )
    return engine.run()


def _controller_session(
    name: str,
    path_name: str,
    duration_s: float,
    epoch_s: float,
    tune_np: bool,
) -> TransferSession:
    """A session without its own tuner (controlled by a JointController)."""
    space, pmap = _space_and_map(tune_np, fixed_np=8, max_nc=512)
    spec = TransferSpec(
        name=name,
        path_name=path_name,
        total_bytes=math.inf,
        max_duration_s=duration_s,
        epoch_s=epoch_s,
    )
    return TransferSession(
        spec, None, space, default_start(space.ndim), param_map=pmap
    )
