"""Full-evaluation campaign: every figure, one report.

``run_campaign`` regenerates the complete evaluation section (Figs. 1,
5-11 plus the ANL→TACC text study) at a chosen scale and assembles a
single markdown-ish report with the paper's reference values inline —
the programmatic counterpart of running every benchmark and
concatenating ``benchmarks/results/``.  The CLI exposes it as
``python -m repro campaign``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments import figures
from repro.experiments.report import render_comparison, render_table


@dataclass(frozen=True)
class CampaignScale:
    """How big a campaign to run.

    ``full`` matches the paper's setup (1800 s transfers, 5 reps);
    ``quick`` is a minutes-scale smoke version with the same structure.
    """

    duration_s: float = 1800.0
    fig1_duration_s: float = 600.0
    fig1_reps: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 60 or self.fig1_duration_s <= 60:
            raise ValueError("durations must exceed one control epoch")
        if self.fig1_reps < 1:
            raise ValueError("fig1_reps must be >= 1")

    @classmethod
    def full(cls, seed: int = 0) -> "CampaignScale":
        return cls(seed=seed)

    @classmethod
    def quick(cls, seed: int = 0) -> "CampaignScale":
        return cls(duration_s=600.0, fig1_duration_s=180.0, fig1_reps=2,
                   seed=seed)


@dataclass
class CampaignResult:
    """Per-figure report blocks plus the assembled document."""

    sections: dict[str, str] = field(default_factory=dict)

    def document(self) -> str:
        parts = ["# Campaign report: ICPP 2016 direct-search reproduction"]
        for name, block in self.sections.items():
            parts.append(f"\n## {name}\n\n```\n{block}\n```")
        return "\n".join(parts)


def run_campaign(scale: CampaignScale | None = None) -> CampaignResult:
    """Run every experiment of the evaluation; returns the report."""
    scale = scale if scale is not None else CampaignScale.full()
    out = CampaignResult()

    # -- Figure 1 ---------------------------------------------------------
    f1 = figures.fig1(
        duration_s=scale.fig1_duration_s, reps=scale.fig1_reps,
        seed=scale.seed,
    )
    rows = [
        [label, nc, f1.stats[label][nc].median]
        for label in f1.stats
        for nc in f1.nc_values
    ]
    out.sections["Fig 1 — throughput vs concurrency"] = render_table(
        ["load", "nc", "median MB/s"], rows
    ) + "\n\n" + render_comparison(
        [("critical nc, no load", 64, f1.critical_point("no-load"))]
    )

    # -- Figures 5-7 -------------------------------------------------------
    f5 = figures.fig5(duration_s=scale.duration_s, seed=scale.seed)
    rows = []
    for load in f5.traces:
        for tuner in f5.traces[load]:
            rows.append(
                [load, tuner, f5.steady_observed(load, tuner),
                 f5.steady_best_case(load, tuner),
                 f"{f5.overhead_pct(load, tuner):.0f}%"]
            )
    out.sections["Figs 5-7 — tuners under static loads"] = render_table(
        ["load", "tuner", "observed", "best-case", "overhead"], rows
    )

    # nc trajectories (Fig 6) as tail means.
    rows = []
    for load in f5.traces:
        for tuner in ("cd-tuner", "cs-tuner", "nm-tuner"):
            nc = f5.nc_trajectory(load, tuner)
            rows.append([load, tuner, float(np.mean(nc[len(nc) // 2:]))])
    out.sections["Fig 6 — settled concurrency"] = render_table(
        ["load", "tuner", "tail-mean nc"], rows
    )

    # -- ANL→TACC ----------------------------------------------------------
    tacc = figures.tacc_concurrency(duration_s=scale.duration_s,
                                    seed=scale.seed)
    rows = [
        [load, tuner, tacc.steady_observed(load, tuner)]
        for load in tacc.traces
        for tuner in tacc.traces[load]
    ]
    out.sections["§IV-A — ANL→TACC"] = render_table(
        ["load", "tuner", "observed"], rows
    )

    # -- Figures 8-10 ------------------------------------------------------
    for name, fn in (("Fig 8 — TACC, varying load", figures.fig8),
                     ("Fig 9 — UChicago, varying load", figures.fig9),
                     ("Fig 10 — heuristics", figures.fig10)):
        res = fn(duration_s=scale.duration_s,
                 switch_at_s=scale.duration_s * 5 / 9, seed=scale.seed)
        rows = [
            [tuner, res.phase_mean(tuner, 0), res.phase_mean(tuner, 1)]
            for tuner in res.traces
        ]
        out.sections[name] = render_table(
            ["tuner", "phase-1 MB/s", "phase-2 MB/s"], rows
        )

    # -- Figure 11 ----------------------------------------------------------
    f11 = figures.fig11(duration_s=scale.duration_s, seed=scale.seed)
    out.sections["Fig 11 — simultaneous transfers"] = render_comparison(
        [
            ("anl-uc MB/s", "larger share",
             f"{f11.mean('anl-uc', from_time=scale.duration_s / 2):.0f}"),
            ("anl-tacc MB/s", "smaller share",
             f"{f11.mean('anl-tacc', from_time=scale.duration_s / 2):.0f}"),
            ("UC share", "> 50%",
             f"{100 * f11.share_of_uc(from_time=scale.duration_s / 2):.0f}%"),
        ]
    )

    return out
