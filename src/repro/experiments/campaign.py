"""Full-evaluation campaign: every figure, one report.

``run_campaign`` regenerates the complete evaluation section (Figs. 1,
5-11 plus the ANL→TACC text study) at a chosen scale and assembles a
single markdown-ish report with the paper's reference values inline —
the programmatic counterpart of running every benchmark and
concatenating ``benchmarks/results/``.  The CLI exposes it as
``python -m repro campaign``.

The campaign is built from named *units* (one per figure/study).  With
``journal_path`` each completed unit's report blocks are appended to a
crash-safe journal (``section`` records, see :mod:`repro.checkpoint`);
rerunning with the same path skips the units already journaled and
recomputes only the rest — a multi-hour full campaign killed between
figures loses at most the unit it was inside.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.cache import keys as cache_keys
from repro.cache.runtime import CacheSpec, activated, resolve_cache
from repro.experiments import figures
from repro.experiments.batch import (
    BatchOccupancy,
    batching,
    dispatch_fallback_reasons,
    dispatch_timings,
    fallback_reasons,
    occupancy,
)
from repro.experiments.parallel import pool_imap
from repro.experiments.report import render_comparison, render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instrument import Instrumentation


@dataclass(frozen=True)
class CampaignScale:
    """How big a campaign to run.

    ``full`` matches the paper's setup (1800 s transfers, 5 reps);
    ``quick`` is a minutes-scale smoke version with the same structure.
    """

    duration_s: float = 1800.0
    fig1_duration_s: float = 600.0
    fig1_reps: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 60 or self.fig1_duration_s <= 60:
            raise ValueError("durations must exceed one control epoch")
        if self.fig1_reps < 1:
            raise ValueError("fig1_reps must be >= 1")

    @classmethod
    def full(cls, seed: int = 0) -> "CampaignScale":
        return cls(seed=seed)

    @classmethod
    def quick(cls, seed: int = 0) -> "CampaignScale":
        return cls(duration_s=600.0, fig1_duration_s=180.0, fig1_reps=2,
                   seed=seed)


@dataclass
class CampaignResult:
    """Per-figure report blocks plus the assembled document."""

    sections: dict[str, str] = field(default_factory=dict)
    #: Unit names restored from a journal instead of recomputed.
    resumed_units: list[str] = field(default_factory=list)
    #: Wall seconds each computed unit took (resumed units carry the
    #: time recorded in their journal section, when present).
    unit_seconds: dict[str, float] = field(default_factory=dict)
    #: Run-cache probes made by the computed units (resumed units did
    #: no work, so they contribute nothing).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-unit ``(hits, misses)`` breakdown of the same probes.
    unit_cache: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: The cache backend's health document (tiers, breaker states) at
    #: campaign end; ``None`` when the campaign ran uncached.
    backend_health: dict | None = None
    #: Batch-engine occupancy accumulated by the computed units (lanes
    #: advanced in batch, scalar fallbacks, cache hits, chunks).  All
    #: zeros when batching was off; resumed units did no simulation, so
    #: they contribute nothing.
    batch: BatchOccupancy = field(default_factory=BatchOccupancy)
    #: Per-unit occupancy breakdown of the same counters.
    unit_batch: dict[str, BatchOccupancy] = field(default_factory=dict)
    #: Why runs fell off the batch path, tallied across computed units
    #: (reason string -> run count).  Pairs with :attr:`batch` — the
    #: values sum to ``batch.fallback``.
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    #: Per-unit breakdown of the same tally.  The campaign aggregate is
    #: recomputed from these cells, folding each ``(unit, reason)``
    #: exactly once — re-accounting a unit (a journal merge replay, a
    #: shard-merged rerun) overwrites its cell instead of double-
    #: counting into :attr:`fallback_reasons`.
    unit_fallback_reasons: dict[str, dict[str, int]] = field(
        default_factory=dict)
    #: Advisory ``dispatch:*`` reasons: batch lanes whose window-end
    #: dispatches kept the scalar ladder instead of a tuner population
    #: (they still rode the vectorized spans, so these do NOT sum into
    #: ``batch.fallback``).  Aggregated once per (unit, reason) like
    #: :attr:`fallback_reasons`.
    dispatch_reasons: dict[str, int] = field(default_factory=dict)
    unit_dispatch_reasons: dict[str, dict[str, int]] = field(
        default_factory=dict)
    #: Wall seconds the computed units spent in each batch-engine phase
    #: (span advance vs epoch close vs tuner dispatch).
    phase_s: dict[str, float] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float | None:
        """Hits over probes, or ``None`` when nothing was probed."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else None

    def document(self) -> str:
        parts = ["# Campaign report: ICPP 2016 direct-search reproduction"]
        for name, block in self.sections.items():
            parts.append(f"\n## {name}\n\n```\n{block}\n```")
        return "\n".join(parts)


# -- campaign units ----------------------------------------------------------
#
# Each unit regenerates one figure/study and returns its report blocks
# (section title -> text).  Units are the granularity of campaign
# journaling: a unit either completes and is durably recorded, or is
# recomputed on resume.


def _unit_fig1(scale: CampaignScale) -> dict[str, str]:
    f1 = figures.fig1(
        duration_s=scale.fig1_duration_s, reps=scale.fig1_reps,
        seed=scale.seed,
    )
    rows = [
        [label, nc, f1.stats[label][nc].median]
        for label in f1.stats
        for nc in f1.nc_values
    ]
    block = render_table(
        ["load", "nc", "median MB/s"], rows
    ) + "\n\n" + render_comparison(
        [("critical nc, no load", 64, f1.critical_point("no-load"))]
    )
    return {"Fig 1 — throughput vs concurrency": block}


def _unit_fig5(scale: CampaignScale) -> dict[str, str]:
    f5 = figures.fig5(duration_s=scale.duration_s, seed=scale.seed)
    rows = []
    for load in f5.traces:
        for tuner in f5.traces[load]:
            rows.append(
                [load, tuner, f5.steady_observed(load, tuner),
                 f5.steady_best_case(load, tuner),
                 f"{f5.overhead_pct(load, tuner):.0f}%"]
            )
    blocks = {
        "Figs 5-7 — tuners under static loads": render_table(
            ["load", "tuner", "observed", "best-case", "overhead"], rows
        )
    }
    # nc trajectories (Fig 6) as tail means.
    rows = []
    for load in f5.traces:
        for tuner in ("cd-tuner", "cs-tuner", "nm-tuner"):
            nc = f5.nc_trajectory(load, tuner)
            rows.append([load, tuner, float(np.mean(nc[len(nc) // 2:]))])
    blocks["Fig 6 — settled concurrency"] = render_table(
        ["load", "tuner", "tail-mean nc"], rows
    )
    return blocks


def _unit_tacc(scale: CampaignScale) -> dict[str, str]:
    tacc = figures.tacc_concurrency(duration_s=scale.duration_s,
                                    seed=scale.seed)
    rows = [
        [load, tuner, tacc.steady_observed(load, tuner)]
        for load in tacc.traces
        for tuner in tacc.traces[load]
    ]
    return {"§IV-A — ANL→TACC": render_table(
        ["load", "tuner", "observed"], rows
    )}


def _switching_unit(
    title: str, fn: Callable
) -> Callable[[CampaignScale], dict[str, str]]:
    def unit(scale: CampaignScale) -> dict[str, str]:
        res = fn(duration_s=scale.duration_s,
                 switch_at_s=scale.duration_s * 5 / 9, seed=scale.seed)
        rows = [
            [tuner, res.phase_mean(tuner, 0), res.phase_mean(tuner, 1)]
            for tuner in res.traces
        ]
        return {title: render_table(
            ["tuner", "phase-1 MB/s", "phase-2 MB/s"], rows
        )}

    return unit


def _unit_fig11(scale: CampaignScale) -> dict[str, str]:
    f11 = figures.fig11(duration_s=scale.duration_s, seed=scale.seed)
    return {"Fig 11 — simultaneous transfers": render_comparison(
        [
            ("anl-uc MB/s", "larger share",
             f"{f11.mean('anl-uc', from_time=scale.duration_s / 2):.0f}"),
            ("anl-tacc MB/s", "smaller share",
             f"{f11.mean('anl-tacc', from_time=scale.duration_s / 2):.0f}"),
            ("UC share", "> 50%",
             f"{100 * f11.share_of_uc(from_time=scale.duration_s / 2):.0f}%"),
        ]
    )}


#: The campaign, in report order: (unit name, runner).  Names are the
#: journal keys, so they must stay stable across versions.
CAMPAIGN_UNITS: list[tuple[str, Callable[[CampaignScale], dict[str, str]]]] = [
    ("fig1", _unit_fig1),
    ("fig5-7", _unit_fig5),
    ("tacc", _unit_tacc),
    ("fig8", _switching_unit("Fig 8 — TACC, varying load", figures.fig8)),
    ("fig9", _switching_unit("Fig 9 — UChicago, varying load",
                             figures.fig9)),
    ("fig10", _switching_unit("Fig 10 — heuristics", figures.fig10)),
    ("fig11", _unit_fig11),
]


def _run_unit(
    task: tuple[str, CampaignScale],
) -> tuple[str, dict[str, str], float, list[tuple[str, bool]],
           BatchOccupancy, dict[str, int], dict[str, int],
           dict[str, float]]:
    """Run one named unit, timed (module-level so it pools; only the
    ``(name, scale)`` pair crosses the process boundary — unit
    callables like :func:`_switching_unit` closures are looked up here
    and never pickled).

    The fourth element is the slice of the ambient store's key log the
    unit produced — every ``(run key, hit?)`` it probed.  Workers
    resolve the store from the environment :func:`run_campaign`'s
    ``activated`` scope exported, and stores are memoized per process,
    so the log accumulates across a worker's tasks and the per-task
    delta is exact.  The fifth element is the unit's batch-occupancy
    delta, measured the same way against the per-process counters (the
    ambient batch width rides the ``REPRO_BATCH`` environment the
    :func:`~repro.experiments.batch.batching` scope exported, and each
    unit runs its figures in-process — ``jobs=1`` inside the unit — so
    the delta is exact too).  The trailing elements break the
    occupancy's fallback count down by reason, deltaed the same way
    (the per-reason counters only grow, so the subtraction is exact),
    plus the unit's advisory ``dispatch:*`` reason delta and its
    per-phase batch-engine wall seconds.
    """
    name, scale = task
    unit = dict(CAMPAIGN_UNITS)[name]
    store = resolve_cache(None)
    log_start = len(store.key_log) if store is not None else 0
    occ_start = occupancy()
    reasons_start = Counter(fallback_reasons())
    dreasons_start = Counter(dispatch_fallback_reasons())
    phases_start = dispatch_timings()["phase_s"]
    t0 = time.perf_counter()
    blocks = unit(scale)
    elapsed = time.perf_counter() - t0
    probed = list(store.key_log[log_start:]) if store is not None else []
    reasons = dict(Counter(fallback_reasons()) - reasons_start)
    dreasons = dict(Counter(dispatch_fallback_reasons()) - dreasons_start)
    phases_end = dispatch_timings()["phase_s"]
    phases = {k: phases_end[k] - phases_start[k] for k in phases_end}
    return (name, blocks, elapsed, probed, occupancy() - occ_start,
            reasons, dreasons, phases)


def _fold_units(per_unit: dict[str, dict[str, int]]) -> dict[str, int]:
    """Aggregate per-unit reason tallies, one fold per (unit, reason)
    cell — the campaign total stays correct even when a unit is
    accounted more than once (its cell is overwritten, not re-added)."""
    agg: dict[str, int] = {}
    for reasons in per_unit.values():
        for reason, count in reasons.items():
            agg[reason] = agg.get(reason, 0) + count
    return agg


def _manifest_key(name: str, scale: CampaignScale) -> str:
    """Content address of one unit's key manifest.

    ``run_key`` folds in the cache schema version and the engine
    fingerprint, so manifests invalidate exactly when the run keys
    they list do.
    """
    return cache_keys.run_key(
        "campaign-manifest", {"unit": name, "scale": asdict(scale)}
    )


def _cache_order(
    names: list[str], scale: CampaignScale
) -> list[str]:
    """Order pending units most-cached-first.

    Each completed unit leaves a *manifest* entry in the cache — the
    run keys it probed.  One batched :meth:`~RunCache.stat_many` over
    every manifested key (a single round-trip on sqlite/HTTP backends)
    tells us each unit's expected hit ratio; fully warm units dispatch
    first, so they stream into the report/journal in seconds while the
    cold, hours-long units get the pool to themselves.  Units without a
    manifest have never completed here — certainly cold — and go last.
    Ties keep campaign order, so the schedule is deterministic; the
    *report* is identical regardless (sections assemble in campaign
    order at the end).
    """
    store = resolve_cache(None)
    if store is None or len(names) <= 1:
        return list(names)
    manifests: dict[str, list[str]] = {}
    for name in names:
        payload = store.peek(_manifest_key(name, scale))
        keys = payload.get("keys") if isinstance(payload, dict) else None
        if isinstance(keys, list) and keys:
            manifests[name] = [k for k in keys if isinstance(k, str)]
    every_key = sorted({k for keys in manifests.values() for k in keys})
    present = store.stat_many(every_key) if every_key else set()

    def ratio(name: str) -> float:
        keys = manifests.get(name)
        if not keys:
            return -1.0
        return sum(1 for k in keys if k in present) / len(keys)

    return sorted(names, key=lambda n: -ratio(n))


def run_campaign(
    scale: CampaignScale | None = None,
    *,
    journal_path: str | Path | None = None,
    jobs: int = 1,
    batch: int | None = None,
    obs: "Instrumentation | None" = None,
    cache: CacheSpec = None,
) -> CampaignResult:
    """Run every experiment of the evaluation; returns the report.

    With ``journal_path``, completed units are journaled (their report
    blocks ride in ``section`` records) and a rerun against the same
    path resumes: journaled units are restored, the remaining ones
    computed.  A journal written at a different scale/seed is refused.

    ``jobs`` fans the units out over processes.  Every unit derives all
    of its randomness from ``scale.seed``, so the report is identical
    at any width; results are merged (and journaled) in campaign order
    as each in-order worker finishes, so parallel runs stay crash-safe
    at the same unit granularity as serial ones.  Per-unit wall times
    land in :attr:`CampaignResult.unit_seconds`, in the journal's
    section records, and — when ``obs`` carries a metrics registry —
    in a ``repro_campaign_unit_seconds{unit=...}`` gauge.

    ``cache`` routes every unit's simulation runs through the run cache
    (:mod:`repro.cache`) — in-process and in pool workers alike.
    Cached runs are bit-identical to simulated ones, so a unit produces
    the same report blocks (and is journaled identically) whether its
    traces came from the engine or from disk; journal resume composes
    with the cache at unit granularity on top.

    Cached campaigns are also *cache-aware*: each completed unit leaves
    a key manifest behind, and the next campaign stats every manifested
    key in one batched probe to dispatch the warmest units first.
    Probe totals land in :attr:`CampaignResult.cache_hits` /
    ``cache_misses`` / ``unit_cache`` and the backend's closing health
    document in :attr:`CampaignResult.backend_health`.

    ``batch`` sets the ambient batch width for every unit
    (:func:`~repro.experiments.batch.batching`): each unit's
    independent runs advance in lockstep lanes of that width, with
    automatic per-run scalar fallback for anything the batch engine
    cannot express.  ``None`` inherits the environment
    (``REPRO_BATCH``); ``0`` forces batching off.  Traces — and hence
    the report — are bit-identical at any width; occupancy counters
    land in :attr:`CampaignResult.batch` / ``unit_batch`` and in the
    journal's section records.  ``batch`` composes with ``jobs``: units
    fan out over processes, and each unit batches its own runs.
    """
    scale = scale if scale is not None else CampaignScale.full()
    with activated(cache):
        with batching(batch):
            return _run_campaign_body(scale, journal_path, jobs, obs)


def _run_campaign_body(
    scale: CampaignScale,
    journal_path: str | Path | None,
    jobs: int,
    obs: "Instrumentation | None",
) -> CampaignResult:
    out = CampaignResult()
    unit_blocks: dict[str, dict[str, str]] = {}
    store = resolve_cache(None)

    def merge(name: str, blocks: dict[str, str],
              elapsed_s: float | None) -> None:
        unit_blocks[name] = blocks
        if elapsed_s is not None:
            out.unit_seconds[name] = float(elapsed_s)
            if obs is not None and obs.metrics is not None:
                obs.metrics.gauge(
                    "repro_campaign_unit_seconds", unit=name
                ).set(float(elapsed_s))

    def account(name: str, probed: list[tuple[str, bool]],
                bocc: BatchOccupancy,
                reasons: dict[str, int] | None = None,
                dreasons: dict[str, int] | None = None,
                phases: dict[str, float] | None = None) -> None:
        """Fold a computed unit's probe log and batch occupancy into
        the result and leave its manifest behind for the next
        campaign's ordering pass."""
        hits = sum(1 for _, hit in probed if hit)
        out.cache_hits += hits
        out.cache_misses += len(probed) - hits
        out.unit_cache[name] = (hits, len(probed) - hits)
        out.unit_batch[name] = bocc
        out.batch = out.batch + bocc
        # Reasons fold once per (unit, reason): the per-unit cells are
        # authoritative and the aggregate is recomputed from them, so
        # accounting a unit twice overwrites instead of double-counting.
        out.unit_fallback_reasons[name] = dict(reasons or {})
        out.unit_dispatch_reasons[name] = dict(dreasons or {})
        out.fallback_reasons = _fold_units(out.unit_fallback_reasons)
        out.dispatch_reasons = _fold_units(out.unit_dispatch_reasons)
        for phase, secs in (phases or {}).items():
            out.phase_s[phase] = out.phase_s.get(phase, 0.0) + secs
        if store is not None and probed:
            manifest = {"keys": sorted({k for k, _ in probed})}
            mkey = _manifest_key(name, scale)
            # Warm reruns probe the same keys — skip the rewrite (and
            # its fsync) when the manifest on disk already matches.
            if store.peek(mkey) != manifest:
                store.put(
                    mkey, manifest,
                    meta={"kind": "campaign-manifest", "unit": name},
                )

    if journal_path is None:
        ordered = _cache_order([name for name, _ in CAMPAIGN_UNITS], scale)
        tasks = [(name, scale) for name in ordered]
        for (name, blocks, elapsed, probed, bocc, reasons, dreasons,
             phases) in pool_imap(_run_unit, tasks, jobs=jobs):
            merge(name, blocks, elapsed)
            account(name, probed, bocc, reasons, dreasons, phases)
    else:
        from repro.checkpoint.journal import JournalWriter, read_journal

        journal_path = Path(journal_path)
        done: dict[str, dict] = {}
        if journal_path.exists() and journal_path.stat().st_size > 0:
            journal = read_journal(journal_path)
            if journal.header is None or "campaign" not in journal.header:
                raise ValueError(
                    f"journal {journal_path} has no campaign header"
                )
            if journal.header["campaign"] != asdict(scale):
                raise ValueError(
                    f"journal {journal_path} was written at scale "
                    f"{journal.header['campaign']}, not {asdict(scale)}; "
                    "resume with the matching scale or use a fresh journal"
                )
            done = journal.sections
        with JournalWriter(journal_path) as writer:
            if not done and journal_path.stat().st_size == 0:
                writer.write_header({"campaign": asdict(scale)})
            for name, _ in CAMPAIGN_UNITS:
                if name in done:
                    merge(name, done[name]["blocks"],
                          done[name].get("elapsed_s"))
                    out.resumed_units.append(name)
            pending = _cache_order(
                [name for name, _ in CAMPAIGN_UNITS if name not in done],
                scale,
            )
            for (name, blocks, elapsed, probed, bocc, reasons, dreasons,
                 phases) in pool_imap(
                _run_unit, [(name, scale) for name in pending], jobs=jobs
            ):
                # Journaled only after the worker result is in hand —
                # a unit is either durably complete or recomputed.
                writer.write_section(
                    name, {
                        "blocks": blocks,
                        "elapsed_s": elapsed,
                        "batch": [bocc.batched, bocc.fallback,
                                  bocc.cached, bocc.chunks],
                        "fallback_reasons": reasons,
                        "dispatch_reasons": dreasons,
                        "phase_s": phases,
                    }
                )
                merge(name, blocks, elapsed)
                account(name, probed, bocc, reasons, dreasons, phases)
            writer.write_end()
    if store is not None:
        out.backend_health = store.health()
    for name, _ in CAMPAIGN_UNITS:
        out.sections.update(unit_blocks[name])
    return out
