"""ASCII rendering of experiment results.

Benches use these helpers to print the same rows/series the paper's
figures show, side by side with the paper's reported values where the
text states them.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float) or isinstance(v, np.floating):
        if abs(float(v)) >= 100:
            return f"{float(v):.0f}"
        return f"{float(v):.2f}"
    return str(v)


def render_series(
    times: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    title: str | None = None,
    time_label: str = "t[s]",
) -> str:
    """One row per time point, one column per named series (how the
    paper's line plots read as text)."""
    headers = [time_label, *series.keys()]
    cols = list(series.values())
    for name, col in series.items():
        if len(col) != len(times):
            raise ValueError(f"series {name!r} length mismatch")
    rows = [
        [times[i], *(col[i] for col in cols)] for i in range(len(times))
    ]
    return render_table(headers, rows, title=title)


def render_comparison(
    rows: Iterable[tuple[str, object, object]],
    *,
    title: str = "paper vs measured",
) -> str:
    """Three-column 'quantity / paper / measured' comparison block."""
    return render_table(
        ["quantity", "paper", "measured"], rows, title=title
    )


def downsample(values: Sequence[float], max_points: int = 20) -> list[float]:
    """Evenly thin a series for compact printing (keeps first and last)."""
    if max_points < 2:
        raise ValueError("max_points must be >= 2")
    arr = list(values)
    if len(arr) <= max_points:
        return arr
    idx = np.linspace(0, len(arr) - 1, max_points).round().astype(int)
    return [arr[i] for i in idx]


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 12,
    width: int = 72,
    title: str | None = None,
) -> str:
    """Plain-text line chart: one glyph per series, shared y-axis.

    Series are resampled to ``width`` columns; the y-axis is labeled with
    the data range.  Intended for CLI/bench output where matplotlib is
    unavailable — a legible shape, not publication graphics.
    """
    if height < 3 or width < 8:
        raise ValueError("chart needs height >= 3 and width >= 8")
    if not series:
        raise ValueError("need at least one series")
    glyphs = "*o+x#@%&"
    if len(series) > len(glyphs):
        raise ValueError(f"at most {len(glyphs)} series supported")

    resampled: dict[str, list[float]] = {}
    for name, values in series.items():
        vals = list(values)
        if not vals:
            raise ValueError(f"series {name!r} is empty")
        resampled[name] = downsample(vals, width)

    all_vals = [v for vals in resampled.values() for v in vals]
    lo, hi = min(all_vals), max(all_vals)
    span = hi - lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, vals), glyph in zip(resampled.items(), glyphs):
        n = len(vals)
        for i, v in enumerate(vals):
            col = round(i * (width - 1) / max(n - 1, 1))
            row = height - 1 - round((v - lo) / span * (height - 1))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.0f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{lo:10.0f} +" + "".join(grid[-1]))
    legend = "   ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(resampled.items(), glyphs)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
