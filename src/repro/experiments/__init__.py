"""Experiment harness: calibrated scenarios, runners, and one function per
paper figure.

* :mod:`repro.experiments.scenarios` — the ANL→UChicago and ANL→TACC
  testbed models with calibrated constants.
* :mod:`repro.experiments.runner` — run (scenario, tuner, load, seed) →
  trace; single transfers, simultaneous pairs, and joint tuning.
* :mod:`repro.experiments.batch` — many independent single runs at once:
  declarative :class:`~repro.experiments.batch.SingleRunSpec`, lockstep
  struct-of-arrays batching with scalar fallback, jobs × batch fan-out.
* :mod:`repro.experiments.figures` — one entry point per figure (1, 5-11)
  plus the ANL→TACC concurrency study described in §IV-A's text.
* :mod:`repro.experiments.report` — ASCII tables and paper-vs-measured
  comparison rows.
"""

from repro.experiments.scenarios import ANL_UC, ANL_TACC, Scenario, standard_tuners
from repro.experiments.runner import run_single, run_pair, run_joint
from repro.experiments.batch import (
    BatchOccupancy,
    SingleRunSpec,
    batching,
    run_batch,
    run_many,
)

__all__ = [
    "ANL_UC",
    "ANL_TACC",
    "BatchOccupancy",
    "Scenario",
    "SingleRunSpec",
    "batching",
    "run_batch",
    "run_many",
    "standard_tuners",
    "run_single",
    "run_pair",
    "run_joint",
]
