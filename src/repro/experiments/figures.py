"""One entry point per figure of the paper's evaluation.

Each ``figN`` function runs the corresponding experiment on the simulated
substrate and returns plain data (dataclasses of arrays/dicts) that the
benchmark harness prints next to the paper's reported values.  All accept
reduced ``duration_s`` / ``reps`` so benches stay fast; the defaults match
the paper's setup (30 s epochs, 1800 s transfers, 5 repetitions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.stats import BoxStats, box_stats, steady_state_mean
from repro.cache.runtime import CacheSpec
from repro.core.base import StaticTuner, Tuner
from repro.core.cs_tuner import CsTuner
from repro.core.heuristics import Heur1Tuner, Heur2Tuner
from repro.core.nm_tuner import NmTuner
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.sim.trace import Trace

from repro.experiments.batch import SingleRunSpec, run_many
from repro.experiments.runner import run_pair
from repro.experiments.scenarios import (
    ANL_TACC,
    ANL_UC,
    Scenario,
    standard_tuners,
)

#: The five external-load conditions of Fig. 5 (and Figs. 6-7), in order:
#: (a) none, (b) ext.cmp=16, (c) ext.cmp=64, (d) ext.tfr=16, (e) ext.tfr=64.
FIG5_LOADS: dict[str, ExternalLoad] = {
    "none": ExternalLoad(),
    "cmp16": ExternalLoad(ext_cmp=16),
    "cmp64": ExternalLoad(ext_cmp=64),
    "tfr16": ExternalLoad(ext_tfr=16),
    "tfr64": ExternalLoad(ext_tfr=64),
}

#: §IV-B load switch: heavy network load for the first 1000 s, then both
#: knobs at 16.
def varying_load_schedule(switch_at_s: float = 1000.0) -> LoadSchedule:
    return LoadSchedule(
        [
            (0.0, ExternalLoad(ext_cmp=16, ext_tfr=64)),
            (switch_at_s, ExternalLoad(ext_cmp=16, ext_tfr=16)),
        ]
    )


# ---------------------------------------------------------------------------
# Figure 1 — throughput vs concurrency boxplots, np = 1
# ---------------------------------------------------------------------------


@dataclass
class Fig1Result:
    """Boxplot statistics per (load label, concurrency)."""

    nc_values: list[int]
    stats: dict[str, dict[int, BoxStats]]

    def critical_point(self, load_label: str) -> int:
        """Concurrency with the highest median throughput."""
        by_nc = self.stats[load_label]
        return max(by_nc, key=lambda nc: by_nc[nc].median)


def fig1(
    scenario: Scenario = ANL_UC,
    *,
    nc_values: list[int] | None = None,
    loads: dict[str, ExternalLoad] | None = None,
    reps: int = 5,
    duration_s: float = 600.0,
    seed: int = 0,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> Fig1Result:
    """Fig. 1: impact of parallel streams on throughput, with and without
    external load (np fixed at 1; 5 reps x 10 min in the paper).

    ``jobs`` fans the (load, nc, rep) cells out over processes; each
    cell's seed is derived from its own (rep, nc), so the statistics are
    identical at any width.  ``cache`` routes every cell through the
    run cache (:mod:`repro.cache`) — workers included.  The cells run
    through :func:`~repro.experiments.batch.run_many`, so an ambient
    batch width (``repro campaign --batch``, ``REPRO_BATCH``) advances
    them in lockstep lanes — bit-identical either way.
    """
    if nc_values is None:
        nc_values = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
    if loads is None:
        loads = {
            "no-load": ExternalLoad(),
            "high-load": ExternalLoad(ext_cmp=16, ext_tfr=16),
        }
    specs = [
        SingleRunSpec(
            scenario, StaticTuner(), load=load, duration_s=duration_s,
            x0=(nc,), fixed_np=1, seed=seed + 1000 * rep + nc,
        )
        for load in loads.values()
        for nc in nc_values
        for rep in range(reps)
    ]
    traces = run_many(specs, jobs=jobs, cache=cache)
    samples = [
        steady_state_mean(t, tail_fraction=0.75) for t in traces
    ]
    stats: dict[str, dict[int, BoxStats]] = {}
    pos = 0
    for label in loads:
        stats[label] = {}
        for nc in nc_values:
            stats[label][nc] = box_stats(samples[pos:pos + reps])
            pos += reps
    return Fig1Result(nc_values=list(nc_values), stats=stats)


# ---------------------------------------------------------------------------
# Figures 5-7 — tuning concurrency under static external loads
# ---------------------------------------------------------------------------


@dataclass
class Fig5Result:
    """Traces per (load label, tuner name); basis of Figs. 5, 6 and 7."""

    traces: dict[str, dict[str, Trace]] = field(default_factory=dict)

    def steady_observed(self, load: str, tuner: str) -> float:
        return steady_state_mean(self.traces[load][tuner])

    def steady_best_case(self, load: str, tuner: str) -> float:
        return steady_state_mean(self.traces[load][tuner], best_case=True)

    def improvement_over_default(self, load: str, tuner: str) -> float:
        return self.steady_observed(load, tuner) / self.steady_observed(
            load, "default"
        )

    def nc_trajectory(self, load: str, tuner: str) -> np.ndarray:
        """Fig. 6: concurrency values adopted over time."""
        return self.traces[load][tuner].epoch_param(0)

    def overhead_pct(self, load: str, tuner: str) -> float:
        """Fig. 5 vs Fig. 7: throughput lost to tool restarts."""
        best = self.steady_best_case(load, tuner)
        if best <= 0:
            return 0.0
        return 100.0 * (1.0 - self.steady_observed(load, tuner) / best)


def fig5(
    scenario: Scenario = ANL_UC,
    *,
    loads: dict[str, ExternalLoad] | None = None,
    tuners: dict[str, Tuner] | None = None,
    duration_s: float = 1800.0,
    seed: int = 0,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> Fig5Result:
    """Figs. 5-7: observed throughput / nc trajectory / best-case
    throughput of default, cd-, cs-, nm-tuner under five static loads
    (np fixed at 8, tuning nc only).  ``jobs`` fans the (load, tuner)
    cells out over processes (each run is seeded independently, so the
    traces are identical at any width); ``cache`` routes every cell
    through the run cache; an ambient batch width advances the cells in
    lockstep lanes (:func:`~repro.experiments.batch.run_many`)."""
    if loads is None:
        loads = dict(FIG5_LOADS)
    if tuners is None:
        tuners = standard_tuners(seed=seed)
    specs = [
        SingleRunSpec(
            scenario, tuner, load=load, duration_s=duration_s,
            fixed_np=8, seed=seed,
        )
        for load in loads.values()
        for tuner in tuners.values()
    ]
    traces = run_many(specs, jobs=jobs, cache=cache)
    out = Fig5Result()
    pos = 0
    for load_label in loads:
        out.traces[load_label] = {}
        for tuner_name in tuners:
            out.traces[load_label][tuner_name] = traces[pos]
            pos += 1
    return out


# Figures 6 and 7 are views over the same runs as Figure 5.
fig6 = fig5
fig7 = fig5


def tacc_concurrency(
    *,
    duration_s: float = 1800.0,
    seed: int = 0,
    loads: dict[str, ExternalLoad] | None = None,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> Fig5Result:
    """§IV-A text: the ANL→TACC variant of the Fig. 5 study."""
    return fig5(ANL_TACC, loads=loads, duration_s=duration_s, seed=seed,
                jobs=jobs, cache=cache)


# ---------------------------------------------------------------------------
# Figures 8-10 — tuning nc and np under a varying load
# ---------------------------------------------------------------------------


@dataclass
class VaryingLoadResult:
    """Traces per tuner under the §IV-B load switch."""

    traces: dict[str, Trace]
    switch_at_s: float

    def phase_mean(self, tuner: str, phase: int) -> float:
        """Mean observed throughput in phase 0 (before the switch) or 1."""
        t = self.traces[tuner]
        if phase == 0:
            return t.mean_observed(to_time=self.switch_at_s)
        return t.mean_observed(from_time=self.switch_at_s)

    def improvement(self, tuner: str, phase: int) -> float:
        return self.phase_mean(tuner, phase) / self.phase_mean(
            "default", phase
        )

    def trajectory(self, tuner: str, dim: int) -> np.ndarray:
        return self.traces[tuner].epoch_param(dim)


def _varying_load_run(
    scenario: Scenario,
    tuners: dict[str, Tuner],
    *,
    duration_s: float,
    switch_at_s: float,
    seed: int,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> VaryingLoadResult:
    schedule = varying_load_schedule(switch_at_s)
    specs = [
        SingleRunSpec(
            scenario, tuner, load=schedule, duration_s=duration_s,
            tune_np=True, seed=seed,
        )
        for tuner in tuners.values()
    ]
    traces = dict(zip(tuners, run_many(specs, jobs=jobs, cache=cache)))
    return VaryingLoadResult(traces=traces, switch_at_s=switch_at_s)


def fig8(
    *,
    duration_s: float = 1800.0,
    switch_at_s: float = 1000.0,
    seed: int = 0,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> VaryingLoadResult:
    """Fig. 8: ANL→TACC, tuning nc and np, load switch at 1000 s;
    cs-tuner and nm-tuner vs default (cd excluded as in the paper)."""
    tuners: dict[str, Tuner] = {
        "default": StaticTuner(),
        "cs-tuner": CsTuner(seed=seed),
        "nm-tuner": NmTuner(),
    }
    return _varying_load_run(
        ANL_TACC, tuners, duration_s=duration_s,
        switch_at_s=switch_at_s, seed=seed, jobs=jobs, cache=cache,
    )


def fig9(
    *,
    duration_s: float = 1800.0,
    switch_at_s: float = 1000.0,
    seed: int = 0,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> VaryingLoadResult:
    """Fig. 9: the Fig. 8 study on ANL→UChicago."""
    tuners: dict[str, Tuner] = {
        "default": StaticTuner(),
        "cs-tuner": CsTuner(seed=seed),
        "nm-tuner": NmTuner(),
    }
    return _varying_load_run(
        ANL_UC, tuners, duration_s=duration_s,
        switch_at_s=switch_at_s, seed=seed, jobs=jobs, cache=cache,
    )


def fig10(
    *,
    duration_s: float = 1800.0,
    switch_at_s: float = 1000.0,
    seed: int = 0,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> VaryingLoadResult:
    """Fig. 10: nm-tuner vs heur1 (Balman, additive) and heur2 (Yildirim,
    exponential) on ANL→TACC under the varying load."""
    tuners: dict[str, Tuner] = {
        "default": StaticTuner(),
        "nm-tuner": NmTuner(),
        "heur1": Heur1Tuner(),
        "heur2": Heur2Tuner(),
    }
    return _varying_load_run(
        ANL_TACC, tuners, duration_s=duration_s,
        switch_at_s=switch_at_s, seed=seed, jobs=jobs, cache=cache,
    )


# ---------------------------------------------------------------------------
# Figure 11 — two simultaneously tuned transfers sharing the source
# ---------------------------------------------------------------------------


@dataclass
class Fig11Result:
    """Traces of the two coupled transfers, keyed 'anl-uc' / 'anl-tacc'."""

    traces: dict[str, Trace]

    def mean(self, name: str, *, from_time: float = 0.0) -> float:
        return self.traces[name].mean_observed(from_time=from_time)

    def share_of_uc(self, *, from_time: float = 0.0) -> float:
        """Fraction of the combined throughput taken by the UChicago
        transfer (the paper observes it claims the larger share)."""
        uc = self.mean("anl-uc", from_time=from_time)
        tacc = self.mean("anl-tacc", from_time=from_time)
        return uc / (uc + tacc)


def fig11(
    *,
    tuner: str = "nm",
    duration_s: float = 1800.0,
    seed: int = 0,
    cache: CacheSpec = None,
) -> Fig11Result:
    """Fig. 11: simultaneous ANL→UChicago and ANL→TACC transfers, each
    independently tuned by nm-tuner (or cs-tuner), no other load.

    No ``jobs`` knob: the two transfers share one coupled engine, so
    there is nothing independent to fan out (the engine's allocation
    cache still applies).
    """
    if tuner == "nm":
        tuner_a: Tuner = NmTuner()
        tuner_b: Tuner = NmTuner()
    elif tuner == "cs":
        tuner_a = CsTuner(seed=seed)
        tuner_b = CsTuner(seed=seed + 1)
    else:
        raise ValueError("tuner must be 'nm' or 'cs'")
    traces = run_pair(
        ANL_UC,
        tuner_a,
        tuner_b,
        path_a="anl-uc",
        path_b="anl-tacc",
        duration_s=duration_s,
        tune_np=True,
        seed=seed,
        cache=cache,
    )
    return Fig11Result(
        traces={"anl-uc": traces["xfer-a"], "anl-tacc": traces["xfer-b"]}
    )
