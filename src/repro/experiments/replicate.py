"""Multi-seed replication utilities.

The paper repeats every Fig. 1 measurement five times and reports boxplot
statistics.  These helpers run any trace-producing experiment across a
seed list and aggregate the scalar metric of interest with a confidence
interval, so benches and examples don't hand-roll the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.stats import BoxStats, box_stats
from repro.cache.runtime import CacheSpec, activated
from repro.experiments.parallel import pool_map

#: An experiment: seed in, scalar metric out.
Experiment = Callable[[int], float]


@dataclass(frozen=True)
class Replicates:
    """Samples of one metric across seeds, with summary accessors."""

    values: tuple[float, ...]
    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.values) != len(self.seeds):
            raise ValueError("one value per seed required")
        if not self.values:
            raise ValueError("need at least one replicate")

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0 for a single replicate."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    def confidence_interval(self, *, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI of the mean (z=1.96 → 95%)."""
        if z <= 0:
            raise ValueError("z must be positive")
        half = z * self.std / np.sqrt(len(self.values))
        return (self.mean - half, self.mean + half)

    def box(self) -> BoxStats:
        return box_stats(self.values)


def replicate(
    experiment: Experiment, seeds: Sequence[int], *, jobs: int = 1,
    cache: CacheSpec = None,
) -> Replicates:
    """Run ``experiment(seed)`` for every seed; collect the metric.

    ``jobs > 1`` fans the seeds out over processes (the experiment must
    then be picklable — a module-level function or
    ``functools.partial`` over one, not a lambda or local closure).
    Values come back in seed order either way, so the resulting
    statistics are identical at any width.  ``cache`` activates the run
    cache (:mod:`repro.cache`) for the experiment's inner runs, in-
    process and in pool workers alike.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    with activated(cache):
        values = tuple(
            float(v)
            for v in pool_map(experiment, [int(s) for s in seeds], jobs=jobs)
        )
    return Replicates(values=values, seeds=tuple(int(s) for s in seeds))


def compare(
    experiments: dict[str, Experiment], seeds: Sequence[int], *,
    jobs: int = 1, cache: CacheSpec = None,
) -> dict[str, Replicates]:
    """Replicate several experiments on a common seed list (paired)."""
    return {
        name: replicate(fn, seeds, jobs=jobs, cache=cache)
        for name, fn in experiments.items()
    }


def win_rate(a: Replicates, b: Replicates) -> float:
    """Fraction of paired seeds where ``a`` beats ``b``.

    Requires both replicate sets to come from the same seed list, which
    makes the comparison paired and variance-reduced.
    """
    if a.seeds != b.seeds:
        raise ValueError("win_rate needs paired (same-seed) replicates")
    wins = sum(1 for va, vb in zip(a.values, b.values) if va > vb)
    return wins / len(a.values)
