"""Fault injection, retry/backoff, and circuit-breaking fallback.

The resilience layer of the reproduction.  Transfers in the paper's
setting run in hostile conditions — external load, restarts that cost
17–50% of throughput (§IV), and a Globus service that "monitors and
retries transfers when there are faults".  This package makes those
conditions injectable and the recovery machinery explicit:

* :mod:`repro.faults.events` / :mod:`repro.faults.schedule` — a library
  of deterministic, seeded fault schedules (stream crash, session abort,
  blackout, link degradation, observation loss, load spikes) composable
  into campaigns; pure data, replayable exactly.
* :mod:`repro.faults.retry` — :class:`RetryPolicy`: exponential backoff
  with jitter, per-epoch and per-session retry budgets.
* :mod:`repro.faults.breaker` — :class:`CircuitBreaker`: after repeated
  failed epochs, fall back to the safe Globus default (nc=2, np=8) and
  probe for recovery later.

Both the simulator (:class:`repro.sim.session.TransferSession` /
:class:`repro.sim.engine.Engine`) and the live adapter
(:func:`repro.live.tune_live`) accept the same schedule + policy +
breaker triple, so an experiment hardened in simulation deploys
unchanged.  A core guarantee holds in both paths: a faulted or absent
observation is never fed to a tuner as genuine throughput.
"""

from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.faults.corrupt import CORRUPTION_KINDS, corrupt_bytes
from repro.faults.errors import EpochFault, FaultError, SessionAborted
from repro.faults.events import (
    BLACKOUT,
    HARD_KINDS,
    KINDS,
    LINK_DEGRADE,
    LOAD_SPIKE,
    OBS_LOSS,
    SESSION_ABORT,
    SOFT_KINDS,
    STREAM_CRASH,
    FaultEvent,
)
from repro.faults.retry import (
    SAFE_DEFAULT_NC,
    SAFE_DEFAULT_NP,
    RetryPolicy,
    RetryState,
)
from repro.faults.schedule import DEFAULT_CAMPAIGN_KINDS, FaultSchedule

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "RetryPolicy",
    "RetryState",
    "CircuitBreaker",
    "FaultError",
    "EpochFault",
    "SessionAborted",
    # fault kinds
    "KINDS",
    "HARD_KINDS",
    "SOFT_KINDS",
    "STREAM_CRASH",
    "SESSION_ABORT",
    "BLACKOUT",
    "LINK_DEGRADE",
    "OBS_LOSS",
    "LOAD_SPIKE",
    "DEFAULT_CAMPAIGN_KINDS",
    # breaker states
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    # safe defaults
    "SAFE_DEFAULT_NC",
    "SAFE_DEFAULT_NP",
    # corruption fuzzer
    "CORRUPTION_KINDS",
    "corrupt_bytes",
]
