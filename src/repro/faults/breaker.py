"""Circuit breaker: stop chasing a failing transfer, fall back, probe.

Retry-with-backoff is the right response to *transient* faults; under a
sustained bad period (a flapping link, an overloaded endpoint) it just
burns every epoch on restart overhead and backoff dead time while the
tuner's search state chases noise.  The breaker cuts that loss:

* **closed** — normal operation; consecutive faulted epochs are counted.
* **open** — after ``failure_threshold`` consecutive failures: the
  session is pinned to the safe Globus default (nc=2, np=8 — the
  paper's ``default`` baseline), the tuner is bypassed (its search
  state is frozen, not polluted), and no retry backoff is charged: the
  tool is left running rather than hammered with relaunches.
* **half-open** — after ``cooldown_epochs`` at the fallback, one probe
  epoch runs with the tuner's parameters again.  A clean probe closes
  the breaker; a faulted probe re-opens it for another cooldown.

The breaker is a pure epoch-state machine: feed it one
``record_epoch(faulted)`` per control epoch and read ``state`` — both
the simulator and the live loop drive it the same way, so a seeded
campaign replays its breaker transitions exactly.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.faults.retry import SAFE_DEFAULT_NC, SAFE_DEFAULT_NP

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

STATES = (CLOSED, OPEN, HALF_OPEN)


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker with a safe-default fallback.

    Parameters
    ----------
    failure_threshold:
        Consecutive faulted epochs (while closed) that open the breaker.
    cooldown_epochs:
        Epochs spent at the fallback before a probe is allowed.
    fallback_nc / fallback_np:
        The safe parameters served while open (Globus large-file
        default).
    """

    failure_threshold: int = 3
    cooldown_epochs: int = 5
    fallback_nc: int = SAFE_DEFAULT_NC
    fallback_np: int = SAFE_DEFAULT_NP

    state: str = field(default=CLOSED, init=False)
    consecutive_failures: int = field(default=0, init=False)
    opens: int = field(default=0, init=False)  #: times the breaker tripped
    _cooldown_left: int = field(default=0, init=False, repr=False)
    #: Optional ``(old, new)`` callback fired on every state change —
    #: telemetry only, never part of snapshots or config round-trips.
    on_transition: Callable[[str, str], None] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_epochs < 1:
            raise ValueError("cooldown_epochs must be >= 1")
        if self.fallback_nc < 1 or self.fallback_np < 1:
            raise ValueError("fallback parameters must be >= 1")
        # Concurrent callers (ResilientBackend worker threads, the fleet
        # supervisor) share one breaker; the lock makes transitions and
        # the half-open probe claim atomic.  Plain attributes, not
        # dataclass fields: they never take part in eq/repr/snapshots.
        self._lock = threading.RLock()
        self._probe_claimed = False

    def __getstate__(self) -> dict:
        # Locks cannot be pickled; a transported breaker starts with a
        # fresh lock and no claimed probe (the claim is per-process).
        state = self.__dict__.copy()
        state.pop("_lock", None)
        state["_probe_claimed"] = False
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._probe_claimed = False

    # -- queries ---------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self.state == OPEN

    @property
    def suppresses_tuner(self) -> bool:
        """True while the tuner must not receive observations (open)."""
        return self.state == OPEN

    def acquire_probe(self) -> bool:
        """Atomically claim the half-open probe.

        Exactly one caller per cooldown gets ``True``; racing threads
        that also saw ``HALF_OPEN`` get ``False`` and must serve their
        fallback *without* recording an epoch (the probe owner's
        ``record_epoch`` resolves the state and releases the claim).
        Single-threaded drivers (the sim engine, ``tune_live``) never
        need to call this.
        """
        with self._lock:
            if self.state == HALF_OPEN and not self._probe_claimed:
                self._probe_claimed = True
                return True
            return False

    # -- transitions -----------------------------------------------------

    def record_epoch(self, faulted: bool) -> str:
        """Feed one finished epoch's outcome; returns the state that will
        govern the *next* epoch."""
        with self._lock:
            old = self.state
            if self.state == CLOSED:
                if faulted:
                    self.consecutive_failures += 1
                    if self.consecutive_failures >= self.failure_threshold:
                        self._trip()
                else:
                    self.consecutive_failures = 0
            elif self.state == OPEN:
                # Faults during cooldown neither extend nor shorten it:
                # the session is already at the safe default and waits.
                self._cooldown_left -= 1
                if self._cooldown_left <= 0:
                    self.state = HALF_OPEN
            else:  # HALF_OPEN: the epoch just recorded was the probe.
                if faulted:
                    self._trip()
                else:
                    self.state = CLOSED
                    self.consecutive_failures = 0
            # Whatever the outcome, the probe round is over.
            self._probe_claimed = False
            new = self.state
        # Telemetry fires outside the lock: a callback that touches the
        # breaker (or blocks) must not deadlock racing callers.
        if new != old and self.on_transition is not None:
            self.on_transition(old, new)
        return new

    def _trip(self) -> None:
        self.state = OPEN
        self.opens += 1
        self._cooldown_left = self.cooldown_epochs

    def reset(self) -> None:
        """Back to a fresh closed breaker (configuration kept)."""
        with self._lock:
            self.state = CLOSED
            self.consecutive_failures = 0
            self.opens = 0
            self._cooldown_left = 0
            self._probe_claimed = False

    # -- checkpoint support ----------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready configuration (for journal headers)."""
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown_epochs": self.cooldown_epochs,
            "fallback_nc": self.fallback_nc,
            "fallback_np": self.fallback_np,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CircuitBreaker":
        """Inverse of :meth:`to_dict` (a fresh closed breaker)."""
        return cls(**data)

    def snapshot(self) -> dict:
        """JSON-ready mutable state (configuration travels separately)."""
        if self.state not in STATES:
            raise ValueError(f"unknown breaker state {self.state!r}")
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
            "cooldown_left": self._cooldown_left,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`."""
        if state["state"] not in STATES:
            raise ValueError(f"unknown breaker state {state['state']!r}")
        with self._lock:
            self.state = str(state["state"])
            self.consecutive_failures = int(state["consecutive_failures"])
            self.opens = int(state["opens"])
            self._cooldown_left = int(state["cooldown_left"])
            self._probe_claimed = False
