"""Seeded byte-corruption fuzzer shared by cache and checkpoint tests.

Durability claims ("damage degrades to a miss", "a torn journal tail is
dropped, never trusted") are only as good as the damage models used to
test them.  This module is that model: three corruption kinds, each
driven by a caller-supplied ``numpy`` Generator so every mangled byte
string is replayable from a seed.

* ``flip``     — flip 1..8 random bits in place (bit rot, bad RAM, a
  partial sector rewrite);
* ``truncate`` — drop a random non-zero suffix (torn write, crash
  mid-append, short read);
* ``garbage``  — append 1..64 random bytes (a write that landed after
  the logical end, interleaved writers without atomic rename).

The chaos backend wrapper reuses the same kinds for its torn-write and
payload-corruption injections, so the property tests and the chaos
suite exercise identical damage.
"""

from __future__ import annotations

import numpy as np

__all__ = ["CORRUPTION_KINDS", "corrupt_bytes"]

#: The damage vocabulary, in the order tests parametrize over it.
CORRUPTION_KINDS = ("flip", "truncate", "garbage")


def corrupt_bytes(
    data: bytes, *, kind: str, rng: np.random.Generator
) -> bytes:
    """Return a damaged copy of ``data``; never a byte-equal one.

    Deterministic given (``data``, ``kind``, generator state).  Empty
    input is handled per kind: flips and truncation have nothing to
    chew on and fall through to garbage-append, which always changes
    the value.
    """
    if kind not in CORRUPTION_KINDS:
        raise ValueError(
            f"unknown corruption kind {kind!r}; use one of "
            f"{CORRUPTION_KINDS}"
        )
    if kind == "flip" and data:
        buf = bytearray(data)
        nbits = int(rng.integers(1, 9))
        for _ in range(nbits):
            pos = int(rng.integers(0, len(buf)))
            buf[pos] ^= 1 << int(rng.integers(0, 8))
        if bytes(buf) != data:
            return bytes(buf)
        # All flips cancelled out (same bit twice) — force one more.
        buf[0] ^= 0x01
        return bytes(buf)
    if kind == "truncate" and data:
        keep = int(rng.integers(0, len(data)))
        return data[:keep]
    # "garbage", or a degenerate empty input for the other kinds.
    extra = rng.integers(0, 256, size=int(rng.integers(1, 65)),
                         dtype=np.uint8)
    return data + extra.tobytes()
