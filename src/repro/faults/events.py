"""Fault event vocabulary.

Every injectable failure is a :class:`FaultEvent` — *what* goes wrong,
*when* (a control-epoch window), and *how badly*.  Six kinds cover the
failure modes the paper's setting exposes (§IV restarts, the Globus
service's "monitors and retries transfers when there are faults", and
the external-load interference of Figs. 5–9):

========================  ====================================================
kind                      effect while active
========================  ====================================================
``STREAM_CRASH``          the tool dies partway through the epoch
                          (``at_fraction``); bytes before the crash count,
                          the rest of the epoch is dead, the epoch is faulted
``SESSION_ABORT``         the whole transfer is killed; it only continues if
                          the retry budget allows a relaunch
``BLACKOUT``              zero-byte epoch(s): the path is dark but the tool
                          survives (route flap, head-of-line stall)
``LINK_DEGRADE``          throughput scaled by ``1 - severity`` (lossy or
                          flapping link)
``OBS_LOSS``              the epoch runs normally but the control channel
                          drops the measurement — the tuner observes nothing
``LOAD_SPIKE``            an endpoint load burst scales throughput by
                          ``1 / (1 + severity)``
========================  ====================================================

Hard kinds (crash/abort/blackout) mark the epoch *faulted*; soft kinds
(degrade/spike) only bend the rate; ``OBS_LOSS`` touches neither bytes
nor fault state — only what the tuner sees.
"""

from __future__ import annotations

from dataclasses import dataclass

STREAM_CRASH = "stream-crash"
SESSION_ABORT = "session-abort"
BLACKOUT = "blackout"
LINK_DEGRADE = "link-degrade"
OBS_LOSS = "obs-loss"
LOAD_SPIKE = "load-spike"

#: All recognized kinds.
KINDS = (
    STREAM_CRASH,
    SESSION_ABORT,
    BLACKOUT,
    LINK_DEGRADE,
    OBS_LOSS,
    LOAD_SPIKE,
)

#: Kinds that kill (part of) the epoch's byte flow and mark it faulted.
HARD_KINDS = (SESSION_ABORT, STREAM_CRASH, BLACKOUT)

#: Kinds that only scale the achievable rate.
SOFT_KINDS = (LINK_DEGRADE, LOAD_SPIKE)


@dataclass(frozen=True)
class FaultEvent:
    """One failure, pinned to a window of control epochs.

    Parameters
    ----------
    kind:
        One of :data:`KINDS`.
    epoch:
        First control epoch (0-based) the event affects.
    duration:
        Number of consecutive epochs affected (>= 1).
    severity:
        For ``LINK_DEGRADE``: fraction of throughput lost, in [0, 1].
        For ``LOAD_SPIKE``: load multiplier >= 0 (rate scales by
        ``1/(1+severity)``).  Ignored by the other kinds.
    at_fraction:
        For ``STREAM_CRASH``: how far through the epoch the crash hits,
        in [0, 1).  Ignored by the other kinds.
    """

    kind: str
    epoch: int
    duration: int = 1
    severity: float = 1.0
    at_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.epoch < 0:
            raise ValueError("epoch must be non-negative")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if self.kind == LINK_DEGRADE and not 0 <= self.severity <= 1:
            raise ValueError("link-degrade severity must be in [0, 1]")
        if self.kind == LOAD_SPIKE and self.severity < 0:
            raise ValueError("load-spike severity must be non-negative")
        if not 0 <= self.at_fraction < 1:
            raise ValueError("at_fraction must be in [0, 1)")

    @property
    def last_epoch(self) -> int:
        return self.epoch + self.duration - 1

    def active_at(self, epoch: int) -> bool:
        """True if this event affects control epoch ``epoch``."""
        return self.epoch <= epoch <= self.last_epoch

    @property
    def hard(self) -> bool:
        return self.kind in HARD_KINDS

    def to_dict(self) -> dict:
        """JSON-ready representation (for journal headers)."""
        return {
            "kind": self.kind,
            "epoch": self.epoch,
            "duration": self.duration,
            "severity": self.severity,
            "at_fraction": self.at_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            epoch=int(data["epoch"]),
            duration=int(data.get("duration", 1)),
            severity=float(data.get("severity", 1.0)),
            at_fraction=float(data.get("at_fraction", 0.0)),
        )
