"""Deterministic fault schedules and campaign builders.

A :class:`FaultSchedule` is an immutable set of :class:`FaultEvent`\\ s
indexed by control epoch.  It is pure data: two schedules built from the
same events (or the same seed) behave identically in the simulator and
the live adapter, which is what makes fault campaigns replayable —
running the same campaign twice yields identical fault, retry and
circuit-breaker transitions.

Campaign builders cover the usual experiment shapes:

* :meth:`FaultSchedule.bernoulli` — independent per-epoch faults at a
  given rate (the seeded generalization of the legacy
  :class:`repro.gridftp.globus.FaultModel` coin flip);
* :meth:`FaultSchedule.bursts` — correlated failure bursts (an unstable
  period of several consecutive bad epochs), the regime circuit breakers
  exist for;
* :meth:`FaultSchedule.blackout` / :meth:`degradation` /
  :meth:`load_spike` — single hand-placed windows for targeted tests.

Schedules compose with :meth:`merge` and re-anchor with :meth:`shifted`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.events import (
    BLACKOUT,
    HARD_KINDS,
    LINK_DEGRADE,
    LOAD_SPIKE,
    OBS_LOSS,
    SESSION_ABORT,
    STREAM_CRASH,
    FaultEvent,
)

#: Default kind mix for random campaigns: mostly transient faults, the
#: occasional observation loss; no session aborts unless asked for.
DEFAULT_CAMPAIGN_KINDS = (STREAM_CRASH, BLACKOUT, OBS_LOSS)


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, epoch-indexed collection of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.epoch, e.kind, e.duration))
        )
        object.__setattr__(self, "events", ordered)

    # -- queries ---------------------------------------------------------

    def events_at(self, epoch: int) -> tuple[FaultEvent, ...]:
        """All events active at control epoch ``epoch``."""
        return tuple(e for e in self.events if e.active_at(epoch))

    def hard_fault_at(self, epoch: int) -> FaultEvent | None:
        """The most severe hard fault active at ``epoch`` (abort beats
        crash beats blackout), or None."""
        active = [e for e in self.events_at(epoch) if e.hard]
        if not active:
            return None
        rank = {k: i for i, k in enumerate(HARD_KINDS)}
        return min(active, key=lambda e: rank[e.kind])

    def rate_factor(self, epoch: int) -> float:
        """Combined soft-fault multiplier on achievable throughput."""
        factor = 1.0
        for e in self.events_at(epoch):
            if e.kind == LINK_DEGRADE:
                factor *= 1.0 - e.severity
            elif e.kind == LOAD_SPIKE:
                factor *= 1.0 / (1.0 + e.severity)
        return factor

    def observation_lost(self, epoch: int) -> bool:
        """True when the control channel drops this epoch's measurement."""
        return any(e.kind == OBS_LOSS for e in self.events_at(epoch))

    @property
    def last_epoch(self) -> int:
        """Last epoch any event touches (-1 for an empty schedule)."""
        return max((e.last_epoch for e in self.events), default=-1)

    def fault_epochs(self) -> tuple[int, ...]:
        """Sorted epochs with at least one hard fault active."""
        hit: set[int] = set()
        for e in self.events:
            if e.hard:
                hit.update(range(e.epoch, e.last_epoch + 1))
        return tuple(sorted(hit))

    def counts_by_kind(self) -> dict[str, int]:
        """Scheduled event count per fault kind (sorted by kind) — what
        ``repro info`` and the telemetry layer summarize a campaign by."""
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return dict(sorted(counts.items()))

    # -- serialization ---------------------------------------------------

    def to_list(self) -> list[dict]:
        """JSON-ready event list (for journal headers)."""
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_list(cls, data: list[dict]) -> "FaultSchedule":
        """Inverse of :meth:`to_list`."""
        return cls(tuple(FaultEvent.from_dict(d) for d in data))

    # -- composition -----------------------------------------------------

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """Union of two schedules' events."""
        return FaultSchedule(self.events + other.events)

    def shifted(self, by_epochs: int) -> "FaultSchedule":
        """The same schedule starting ``by_epochs`` later."""
        if by_epochs < 0:
            raise ValueError("by_epochs must be non-negative")
        return FaultSchedule(
            tuple(
                FaultEvent(
                    kind=e.kind,
                    epoch=e.epoch + by_epochs,
                    duration=e.duration,
                    severity=e.severity,
                    at_fraction=e.at_fraction,
                )
                for e in self.events
            )
        )

    # -- builders --------------------------------------------------------

    @classmethod
    def blackout(cls, epoch: int, duration: int = 1) -> "FaultSchedule":
        """A single zero-byte window."""
        return cls((FaultEvent(BLACKOUT, epoch, duration),))

    @classmethod
    def abort(cls, epoch: int) -> "FaultSchedule":
        """A full-session kill at ``epoch``."""
        return cls((FaultEvent(SESSION_ABORT, epoch),))

    @classmethod
    def degradation(
        cls, epoch: int, duration: int, severity: float
    ) -> "FaultSchedule":
        """A lossy-link window scaling throughput by ``1 - severity``."""
        return cls((FaultEvent(LINK_DEGRADE, epoch, duration, severity),))

    @classmethod
    def load_spike(
        cls, epoch: int, duration: int, severity: float
    ) -> "FaultSchedule":
        """An endpoint load burst scaling throughput by ``1/(1+severity)``."""
        return cls((FaultEvent(LOAD_SPIKE, epoch, duration, severity),))

    @classmethod
    def bernoulli(
        cls,
        seed: int,
        n_epochs: int,
        fault_rate: float,
        kinds: tuple[str, ...] = DEFAULT_CAMPAIGN_KINDS,
    ) -> "FaultSchedule":
        """Independent per-epoch faults: each epoch faults with probability
        ``fault_rate``; the kind is drawn uniformly from ``kinds``.

        Fully determined by ``seed`` — the campaign is data, not a run-time
        coin flip, so replays are exact.
        """
        if n_epochs < 0:
            raise ValueError("n_epochs must be non-negative")
        if not 0 <= fault_rate <= 1:
            raise ValueError("fault_rate must be in [0, 1]")
        if not kinds:
            raise ValueError("kinds must be non-empty")
        rng = np.random.default_rng(seed)
        events = []
        for epoch in range(n_epochs):
            if rng.random() >= fault_rate:
                continue
            kind = kinds[int(rng.integers(len(kinds)))]
            at_fraction = float(rng.uniform(0.1, 0.9)) if kind == STREAM_CRASH else 0.0
            events.append(FaultEvent(kind, epoch, at_fraction=at_fraction))
        return cls(tuple(events))

    @classmethod
    def bursts(
        cls,
        seed: int,
        n_epochs: int,
        n_bursts: int,
        burst_len: int,
        kind: str = BLACKOUT,
    ) -> "FaultSchedule":
        """``n_bursts`` windows of ``burst_len`` consecutive faulted epochs
        at seeded-random starting points — the correlated-failure regime
        that trips a circuit breaker."""
        if n_epochs < 0 or n_bursts < 0:
            raise ValueError("n_epochs and n_bursts must be non-negative")
        if burst_len < 1:
            raise ValueError("burst_len must be >= 1")
        rng = np.random.default_rng(seed)
        events = []
        latest_start = max(0, n_epochs - burst_len)
        for _ in range(n_bursts):
            start = int(rng.integers(0, latest_start + 1))
            events.append(FaultEvent(kind, start, duration=burst_len))
        return cls(tuple(events))
