"""Retry policy: exponential backoff with jitter and bounded budgets.

The Globus service "monitors and retries transfers when there are
faults"; a retry is never free — the relaunch pays the restart overhead
the paper measures at 17–50% of throughput (§IV), plus a deliberate
backoff delay so a flapping endpoint is not hammered.  The policy is
pure configuration (frozen dataclass); the mutable counters live in
:class:`RetryState`, one per transfer session.

Backoff is the standard exponential-with-jitter scheme:
``base * factor**attempt`` clamped to ``max_backoff_s``, multiplied by a
uniform jitter in ``[1 - jitter_frac, 1 + jitter_frac]`` drawn from the
caller's seeded generator (pass ``rng=None`` for the deterministic
midpoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

#: The safe Globus large-file default the circuit breaker falls back to.
SAFE_DEFAULT_NC = 2
SAFE_DEFAULT_NP = 8


@dataclass(frozen=True)
class RetryPolicy:
    """How failed epochs are retried and backed off.

    Parameters
    ----------
    max_retries_per_epoch:
        Relaunch attempts within one control epoch (live path) before the
        epoch is recorded as faulted and the loop moves on.
    max_retries_per_session:
        Total retry budget across the whole transfer; ``None`` =
        unlimited.  A session abort with an exhausted budget ends the
        transfer.
    base_backoff_s / backoff_factor / max_backoff_s:
        Exponential backoff: attempt ``k`` (0-based) waits
        ``min(base * factor**k, max_backoff_s)`` seconds.
    jitter_frac:
        Relative uniform jitter on the backoff, in [0, 1).
    """

    max_retries_per_epoch: int = 3
    max_retries_per_session: int | None = None
    base_backoff_s: float = 1.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    jitter_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries_per_epoch < 0:
            raise ValueError("max_retries_per_epoch must be non-negative")
        if (self.max_retries_per_session is not None
                and self.max_retries_per_session < 0):
            raise ValueError("max_retries_per_session must be non-negative")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if not 0 <= self.jitter_frac < 1:
            raise ValueError("jitter_frac must be in [0, 1)")

    def backoff_s(
        self,
        attempt: int,
        rng: np.random.Generator | None = None,
        u: float | None = None,
    ) -> float:
        """Delay before retry ``attempt`` (0-based).

        Jitter comes from ``u`` in [-1, 1] when given (callers that
        pre-draw to keep their stream consumption fixed), else from
        ``rng``, else the deterministic midpoint.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        delay = min(
            self.base_backoff_s * self.backoff_factor ** attempt,
            self.max_backoff_s,
        )
        if u is None and rng is not None:
            u = float(rng.uniform(-1.0, 1.0))
        if u is not None and self.jitter_frac > 0:
            if not -1.0 <= u <= 1.0:
                raise ValueError("u must be in [-1, 1]")
            delay *= 1.0 + self.jitter_frac * u
        return delay

    def start(self) -> "RetryState":
        """A fresh per-session counter set for this policy."""
        return RetryState(policy=self)

    def to_dict(self) -> dict:
        """JSON-ready configuration (for journal headers)."""
        return {
            "max_retries_per_epoch": self.max_retries_per_epoch,
            "max_retries_per_session": self.max_retries_per_session,
            "base_backoff_s": self.base_backoff_s,
            "backoff_factor": self.backoff_factor,
            "max_backoff_s": self.max_backoff_s,
            "jitter_frac": self.jitter_frac,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclass
class RetryState:
    """Mutable retry counters for one transfer session."""

    policy: RetryPolicy
    consecutive_failures: int = 0
    total_retries: int = 0
    _epoch_attempts: int = field(default=0, repr=False)
    #: Optional ``(total_retries, backoff_s)`` callback fired when a
    #: retry is charged — telemetry only, excluded from snapshots.
    on_retry: Callable[[int, float], None] | None = field(
        default=None, repr=False, compare=False
    )

    def can_retry(self) -> bool:
        """True while both the per-epoch and session budgets allow another
        relaunch."""
        if self._epoch_attempts >= self.policy.max_retries_per_epoch:
            return False
        budget = self.policy.max_retries_per_session
        return budget is None or self.total_retries < budget

    def record_failure(
        self,
        rng: np.random.Generator | None = None,
        u: float | None = None,
    ) -> float:
        """Charge one retry; returns the backoff delay to serve (seconds).

        The backoff escalates with the *consecutive-failure streak* (not
        the per-epoch attempt count), so a multi-epoch bad period keeps
        doubling the delay the way repeated relaunches of a dying tool
        would.  Call only when :meth:`can_retry` is True.
        """
        if not self.can_retry():
            raise RuntimeError("retry budget exhausted")
        delay = self.policy.backoff_s(self.consecutive_failures, rng=rng, u=u)
        self._epoch_attempts += 1
        self.consecutive_failures += 1
        self.total_retries += 1
        if self.on_retry is not None:
            self.on_retry(self.total_retries, delay)
        return delay

    def record_success(self) -> None:
        """A clean epoch: reset the consecutive-failure streak."""
        self.consecutive_failures = 0
        self._epoch_attempts = 0

    def next_epoch(self) -> None:
        """A new control epoch begins: the per-epoch budget refills."""
        self._epoch_attempts = 0

    # -- checkpoint support ----------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready counters (the policy itself travels separately)."""
        return {
            "consecutive_failures": self.consecutive_failures,
            "total_retries": self.total_retries,
            "epoch_attempts": self._epoch_attempts,
        }

    def restore(self, state: dict) -> None:
        """Inverse of :meth:`snapshot`."""
        self.consecutive_failures = int(state["consecutive_failures"])
        self.total_retries = int(state["total_retries"])
        self._epoch_attempts = int(state["epoch_attempts"])
