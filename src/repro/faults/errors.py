"""Exceptions raised by the resilience layer."""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for injected or detected transfer faults."""


class EpochFault(FaultError):
    """One control epoch failed (tool crash, launch failure, blackout).

    ``kind`` carries the fault vocabulary of :mod:`repro.faults.events`
    (or a free-form tag for real-world failures); ``partial_bytes`` is
    whatever the epoch managed to move before dying, so callers can keep
    the partial byte accounting.
    """

    def __init__(
        self, message: str, *, kind: str = "epoch-fault",
        partial_bytes: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.partial_bytes = float(partial_bytes)


class SessionAborted(FaultError):
    """The whole transfer died and the retry budget is exhausted."""
