"""HTTP front end for the fleet service: ``repro serve`` / ``repro submit``.

A thin JSON protocol over the stdlib ``ThreadingHTTPServer`` (the same
pattern as :mod:`repro.cache.http_store`):

==============================  ==========================================
``POST /v1/submit``             body: tenant spec JSON (+ optional
                                ``chaos``) -> decision doc
``GET  /v1/tenants/<id>``       tenant status (404 unknown)
``POST /v1/tenants/<id>/steer``  body: ``{"params": [...]}`` -> ack
``POST /v1/tenants/<id>/cancel`` -> ack
``GET  /v1/status``             fleet status document
``GET  /v1/metrics``            Prometheus text exposition
``GET  /v1/health``             liveness/readiness probe
``POST /v1/drain``              graceful drain (also what SIGTERM does)
==============================  ==========================================

The :class:`FleetService` itself is single-threaded; the server
serializes every fleet access behind one lock and advances the fleet
on a dedicated pump thread.  SIGTERM/SIGINT (via
:class:`~repro.service.drain.GracefulSignals`) stop admissions, let
the current round's epochs finish, drain in-flight HTTP requests
(:class:`~repro.service.drain.InFlightGauge`), journal final tenant
statuses, and exit 0.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.drain import GracefulSignals, InFlightGauge
from repro.service.fleet import FleetService
from repro.service.tenant import TenantChaos, TenantSpec

__all__ = ["FleetServer", "FleetClient", "FleetApiError"]

_TENANT_PREFIX = "/v1/tenants/"


def _make_handler(server: "FleetServer") -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-fleet"

        def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
            pass

        def _send(self, status: int, body: bytes = b"",
                  content_type: str = "application/json") -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            if body:
                self.wfile.write(body)

        def _send_json(self, doc, status: int = 200) -> None:
            self._send(status, json.dumps(doc).encode())

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b"{}"
            return json.loads(raw or b"{}")

        def _tenant_route(self) -> tuple[str, str] | None:
            """``(tenant, action)`` for ``/v1/tenants/<id>[/<action>]``."""
            if not self.path.startswith(_TENANT_PREFIX):
                return None
            rest = self.path[len(_TENANT_PREFIX):]
            name, _, action = rest.partition("/")
            return (name, action) if name else None

        def do_GET(self):
            with server.in_flight:
                if self.path == "/v1/health":
                    self._send_json({
                        "status": ("draining" if server.fleet.drained
                                   else "ok"),
                    })
                    return
                if self.path == "/v1/status":
                    with server.lock:
                        self._send_json(server.fleet.status())
                    return
                if self.path == "/v1/metrics":
                    with server.lock:
                        text = server.fleet.prometheus()
                    self._send(200, text.encode(),
                               "text/plain; version=0.0.4")
                    return
                route = self._tenant_route()
                if route is not None and not route[1]:
                    try:
                        with server.lock:
                            doc = server.fleet.observe(route[0])
                    except KeyError:
                        self._send_json({"error": "unknown tenant"}, 404)
                        return
                    self._send_json(doc)
                    return
                self._send_json({"error": "not found"}, 404)

        def do_POST(self):
            with server.in_flight:
                if self.path == "/v1/submit":
                    try:
                        doc = self._read_json()
                        chaos = None
                        chaos_doc = doc.pop("chaos", None)
                        if chaos_doc:
                            chaos = TenantChaos(
                                crash_epochs=tuple(
                                    chaos_doc.get("crash_epochs", ())),
                                poison_epochs=tuple(
                                    chaos_doc.get("poison_epochs", ())),
                            )
                        spec = TenantSpec.from_dict(doc)
                        with server.lock:
                            decision = server.fleet.submit(spec, chaos=chaos)
                    except (ValueError, TypeError, KeyError) as exc:
                        self._send_json({"error": str(exc)}, 400)
                        return
                    self._send_json(decision)
                    return
                if self.path == "/v1/drain":
                    server.request_drain()
                    self._send_json({"status": "draining"})
                    return
                route = self._tenant_route()
                if route is not None and route[1] in ("steer", "cancel"):
                    name, action = route
                    try:
                        with server.lock:
                            if action == "steer":
                                body = self._read_json()
                                doc = server.fleet.steer(
                                    name, body.get("params", ()))
                            else:
                                doc = server.fleet.cancel(name)
                    except KeyError:
                        self._send_json({"error": "unknown tenant"}, 404)
                        return
                    except ValueError as exc:
                        self._send_json({"error": str(exc)}, 409)
                        return
                    self._send_json(doc)
                    return
                self._send_json({"error": "not found"}, 404)

    return Handler


class FleetServer:
    """A running fleet service with its HTTP front end and pump loop."""

    def __init__(
        self,
        fleet: FleetService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        pace_s: float = 0.0,
    ) -> None:
        if pace_s < 0:
            raise ValueError("pace_s must be >= 0")
        self.fleet = fleet
        self.pace_s = pace_s
        self.lock = threading.Lock()
        self.in_flight = InFlightGauge()
        self._drain_requested = threading.Event()
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self))
        self._httpd.daemon_threads = True
        self._serve_thread: threading.Thread | None = None
        self._pump_thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        if ":" in host:  # IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{port}"

    def request_drain(self) -> None:
        self._drain_requested.set()

    # -- the pump loop ---------------------------------------------------

    def _pump_loop(self) -> None:
        while not self._drain_requested.is_set():
            with self.lock:
                busy = (self.fleet.active_count()
                        or self.fleet.admission.queued())
                if busy and not self.fleet.drained:
                    self.fleet.pump()
            # An idle fleet spins gently; a paced one sleeps its round.
            self._drain_requested.wait(self.pace_s if busy else 0.02)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "FleetServer":
        """Serve and pump on background threads (tests, embedding)."""
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._serve_thread.start()
        self._pump_thread = threading.Thread(
            target=self._pump_loop, daemon=True
        )
        self._pump_thread.start()
        return self

    def drain_and_stop(self, *, request_timeout_s: float = 5.0) -> dict:
        """The graceful-shutdown path: stop the pump loop at a round
        boundary, stop accepting HTTP, let in-flight requests finish,
        drain the fleet (journaling final statuses)."""
        self._drain_requested.set()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=30.0)
            self._pump_thread = None
        self._httpd.shutdown()  # stop accepting new connections
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        self.in_flight.wait_idle(request_timeout_s)
        self._httpd.server_close()
        with self.lock:
            return self.fleet.drain()

    def run_forever(self) -> int:
        """The ``repro serve`` path: serve until SIGTERM/SIGINT (or a
        ``POST /v1/drain``), then drain gracefully.  Returns the exit
        code (0 on a clean drain)."""
        with GracefulSignals() as signals:
            self.start()
            while not (signals.triggered.is_set()
                       or self._drain_requested.is_set()):
                signals.triggered.wait(0.1)
            self.drain_and_stop()
        return 0

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.drain_and_stop()


class FleetClient:
    """Stdlib client for a :class:`FleetServer` (``repro submit``)."""

    def __init__(self, base_url: str, *, timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    def _request(self, method: str, path: str, doc: dict | None = None):
        body = json.dumps(doc).encode() if doc is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                raw = resp.read()
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw or b"{}")
            except json.JSONDecodeError:
                payload = {"error": raw.decode(errors="replace")}
            raise FleetApiError(exc.code, payload.get("error", "")) from None
        return json.loads(raw or b"{}")

    def submit(self, spec: TenantSpec | dict, *, chaos: dict | None = None):
        doc = spec.to_dict() if isinstance(spec, TenantSpec) else dict(spec)
        if chaos is not None:
            doc["chaos"] = chaos
        return self._request("POST", "/v1/submit", doc)

    def observe(self, tenant: str) -> dict:
        return self._request("GET", _TENANT_PREFIX + tenant)

    def steer(self, tenant: str, params) -> dict:
        return self._request(
            "POST", _TENANT_PREFIX + tenant + "/steer",
            {"params": list(params)},
        )

    def cancel(self, tenant: str) -> dict:
        return self._request("POST", _TENANT_PREFIX + tenant + "/cancel", {})

    def status(self) -> dict:
        return self._request("GET", "/v1/status")

    def metrics_text(self) -> str:
        req = urllib.request.Request(self.base_url + "/v1/metrics")
        with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
            return resp.read().decode()

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def drain(self) -> dict:
        return self._request("POST", "/v1/drain", {})

    def wait_terminal(
        self, tenant: str, *, timeout_s: float = 30.0, poll_s: float = 0.05
    ) -> dict:
        """Poll until the tenant reaches a terminal state."""
        from repro.service.tenant import TERMINAL_STATES

        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.observe(tenant)
            if doc.get("state") in TERMINAL_STATES:
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"tenant {tenant!r} still {doc.get('state')!r} after "
                    f"{timeout_s}s"
                )
            time.sleep(poll_s)


class FleetApiError(RuntimeError):
    """A non-2xx fleet API response."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"fleet API error {status}: {message}")
