"""Backpressure primitives for the fleet service.

Two failure modes threaten a shared shard loop: a tenant's tuner that
never returns (wedged optimization code, a poisoned state machine), and
an observer that reads status slower than the shard produces it.  Both
are bounded here:

* :class:`OpGuard` — per-operation deadlines on the same shared,
  fork-safe worker pool pattern as
  :class:`repro.cache.resilience.ResilientBackend`: the guarded call
  runs on a worker thread and the caller waits at most ``deadline_s``.
  A deadline miss raises :class:`OpDeadlineError`; the shard treats it
  exactly like a tuner crash (quarantine + supervised restart), so a
  wedged tenant costs one deadline, never the shard.
* :class:`BoundedRing` — a fixed-capacity update ring in the spirit of
  ``obs.bus``'s bounded subscribers: when an observer falls behind, the
  *oldest of its own updates* are dropped (and counted) — the producer
  never blocks.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Callable, TypeVar

T = TypeVar("T")

_POOL_THREAD_PREFIX = "repro-fleet-op"

_POOL: ThreadPoolExecutor | None = None
_POOL_LOCK = threading.Lock()


def _pool() -> ThreadPoolExecutor:
    """The shared deadline-enforcement pool (created on first use)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=8, thread_name_prefix=_POOL_THREAD_PREFIX
            )
        return _POOL


def _reset_pool_after_fork() -> None:
    # A forked child inherits a dead pool (its worker threads do not
    # survive the fork); drop it so the child builds a fresh one.
    global _POOL
    _POOL = None


os.register_at_fork(after_in_child=_reset_pool_after_fork)


class OpDeadlineError(TimeoutError):
    """A guarded operation overran its deadline."""

    def __init__(self, op: str, deadline_s: float) -> None:
        self.op = op
        self.deadline_s = deadline_s
        super().__init__(f"operation {op!r} exceeded {deadline_s}s deadline")


class OpGuard:
    """Run callables under a wall-clock deadline.

    ``deadline_s=None`` runs inline (zero overhead — the default for
    simulation-driven fleets where tuner calls are microseconds).  With
    a deadline, the call is dispatched to the shared worker pool and
    abandoned on overrun; the abandoned call may still finish on its
    worker thread, but its target object is discarded by the caller
    (the supervisor rebuilds a fresh one), so a late mutation lands on
    garbage.
    """

    def __init__(self, deadline_s: float | None = None) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        self.deadline_s = deadline_s

    def call(self, op: str, fn: Callable[[], T]) -> T:
        if self.deadline_s is None:
            return fn()
        if threading.current_thread().name.startswith(_POOL_THREAD_PREFIX):
            # Already on a guard worker (nested guard): run inline
            # rather than deadlocking on a saturated pool.
            return fn()
        future = _pool().submit(fn)
        try:
            return future.result(timeout=self.deadline_s)
        except FutureTimeout:
            future.cancel()
            raise OpDeadlineError(op, self.deadline_s) from None


class BoundedRing:
    """Fixed-capacity FIFO that drops its own oldest entries when full.

    The producer (shard loop) always appends in O(1) and never blocks;
    a slow consumer loses the oldest updates it has not drained yet,
    and ``dropped`` counts them.  Thread-safe for one producer and any
    number of consumers.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: deque = deque()
        self._lock = threading.Lock()
        self.dropped = 0
        self.pushed = 0

    def push(self, item) -> None:
        with self._lock:
            self.pushed += 1
            if len(self._items) >= self.capacity:
                self._items.popleft()
                self.dropped += 1
            self._items.append(item)

    def drain(self) -> list:
        """Remove and return everything currently buffered (oldest first)."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
        return items

    def latest(self):
        """The most recent entry without consuming it (None when empty)."""
        with self._lock:
            return self._items[-1] if self._items else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
