"""Tenant model: one tuned transfer owned by the fleet service.

A :class:`TenantSpec` is the submit payload — pure data, JSON
round-trippable, stable enough to live in a journal header.  A
:class:`Tenant` is the runtime the fleet tracks for it: lifecycle
state, the tuner driver the shard feeds (the substrate session itself
is driverless — the engine dispatches closed epochs to the shard's
``epoch_sink``), the epoch records that make supervised restarts
replayable, and the bounded status ring observers read from.

Lifecycle::

    QUEUED ──admit──> RUNNING ──budget──> COMPLETED
      │                  │ │
      │ shed             │ └─cancel────> CANCELLED
      └────> SHED        └─unsupervised crash──> FAILED

``SHED``/``FAILED``/``CANCELLED`` always carry a recorded reason; the
acceptance storm asserts no tenant ever ends without one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import TunerDriver
from repro.core.params import (
    ParamSpace,
    concurrency_parallelism_space,
    concurrency_space,
)
from repro.core.registry import make_tuner, tuner_names
from repro.experiments.scenarios import default_start
from repro.faults.retry import SAFE_DEFAULT_NC, SAFE_DEFAULT_NP
from repro.service.backpressure import BoundedRing
from repro.sim.session import ParamMap
from repro.sim.trace import EpochRecord

# -- lifecycle states ------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
SHED = "shed"
FAILED = "failed"
CANCELLED = "cancelled"
DRAINED = "drained"

TENANT_STATES = (QUEUED, RUNNING, COMPLETED, SHED, FAILED, CANCELLED, DRAINED)

#: States a tenant never leaves.
TERMINAL_STATES = (COMPLETED, SHED, FAILED, CANCELLED, DRAINED)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's submit request.

    Parameters
    ----------
    tenant:
        Fleet-unique tenant id (doubles as the substrate session name).
    scenario:
        Shard key — the named scenario whose topology the tenant runs
        on (``repro info`` lists them).
    tuner:
        Registered tuner short name (:mod:`repro.core.registry`).
    seed:
        Tuner seed; restarts rebuild the identical algorithm from it.
    epochs:
        Control-epoch budget: the tenant completes after this many
        epochs.
    tune_np / fixed_np / max_nc / x0:
        Parameter-space conventions, as in
        :func:`repro.experiments.runner.make_session`.
    supervised:
        Whether a crashed/wedged tuner is restarted from the epoch
        journal (bit-identically) instead of failing the tenant.
    op_deadline_s:
        Optional wall-clock deadline on each tuner call (None = inline).
    """

    tenant: str
    scenario: str = "anl-uc"
    tuner: str = "cd"
    seed: int = 0
    epochs: int = 10
    tune_np: bool = False
    fixed_np: int = 8
    max_nc: int = 512
    x0: tuple[int, ...] | None = None
    supervised: bool = True
    op_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant id must be non-empty")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.tuner not in tuner_names():
            raise ValueError(
                f"unknown tuner {self.tuner!r}; choose from {tuner_names()}"
            )

    def space_and_map(self) -> tuple[ParamSpace, ParamMap]:
        if self.tune_np:
            return (concurrency_parallelism_space(max_nc=self.max_nc),
                    ParamMap.nc_np())
        return (concurrency_space(max_nc=self.max_nc),
                ParamMap.nc_only(fixed_np=self.fixed_np))

    def start_point(self) -> tuple[int, ...]:
        if self.x0 is not None:
            return tuple(self.x0)
        return default_start(2 if self.tune_np else 1)

    def pinned_start(self) -> tuple[int, ...]:
        """The degraded-mode start: the safe Globus default."""
        if self.tune_np:
            return (SAFE_DEFAULT_NC, SAFE_DEFAULT_NP)
        return (SAFE_DEFAULT_NC,)

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "scenario": self.scenario,
            "tuner": self.tuner,
            "seed": self.seed,
            "epochs": self.epochs,
            "tune_np": self.tune_np,
            "fixed_np": self.fixed_np,
            "max_nc": self.max_nc,
            "x0": list(self.x0) if self.x0 is not None else None,
            "supervised": self.supervised,
            "op_deadline_s": self.op_deadline_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TenantSpec":
        known = {
            "tenant", "scenario", "tuner", "seed", "epochs", "tune_np",
            "fixed_np", "max_nc", "x0", "supervised", "op_deadline_s",
        }
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown tenant spec fields {sorted(extra)}")
        kwargs = dict(data)
        if kwargs.get("x0") is not None:
            kwargs["x0"] = tuple(int(v) for v in kwargs["x0"])
        return cls(**kwargs)


@dataclass(frozen=True)
class TenantChaos:
    """Injected misbehavior for storm tests.

    ``crash_epochs`` raise inside the tenant's tuner call at those
    epoch indices (the supervisor's restart path); ``poison_epochs``
    replace the observation with NaN before the tuner sees it (the
    quarantine path).  Both are part of the *fleet test harness*, not
    the substrate — a production tenant misbehaves on its own.
    """

    crash_epochs: tuple[int, ...] = ()
    poison_epochs: tuple[int, ...] = ()


class Tenant:
    """Runtime state of one admitted (or queued) tenant."""

    def __init__(
        self,
        spec: TenantSpec,
        *,
        degraded: bool = False,
        chaos: TenantChaos | None = None,
        ring_capacity: int = 64,
    ) -> None:
        self.spec = spec
        self.state = QUEUED
        #: Why the tenant ended up in a terminal state ("" while live).
        self.reason = ""
        #: Degraded admits are pinned at the safe default: no tuner,
        #: no per-epoch restarts, params held for the whole run.
        self.degraded = degraded
        self.chaos = chaos

        self.space, self.param_map = spec.space_and_map()
        self.x0 = (spec.pinned_start() if degraded else spec.start_point())
        self.driver: TunerDriver | None = None
        #: Degraded tenants are set-and-hold; live ones follow their
        #: tuner's relaunch trait (the paper's tuners restart each epoch).
        self.restart_each_epoch = False
        if not degraded:
            tuner = make_tuner(spec.tuner, spec.seed)
            self.restart_each_epoch = tuner.restarts_every_epoch
            self.driver = tuner.start(self.x0, self.space)

        #: Closed epoch records, in order — the tenant's replay journal.
        self.records: list[EpochRecord] = []
        #: Epoch indices whose observation was quarantined (poisoned):
        #: a restart replay must withhold exactly these from the tuner.
        self.skipped: set[int] = set()
        #: Standing steer override; adopted on the next clean epoch.
        self.steer_override: tuple[int, ...] | None = None
        self.steered = False

        self.restarts = 0
        self.faulted_epochs = 0
        self.quarantined = 0
        #: Status updates for observers (bounded: slow observers drop
        #: their own oldest updates, never stall the shard).
        self.updates = BoundedRing(ring_capacity)

    # -- queries ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.tenant

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def dispatch_group(self) -> tuple | None:
        """Lane-grouping key for the shard's homogeneous epoch
        dispatch, or ``None`` if this tenant needs the full ladder.

        Tenants sharing a key run the same tuner class with the same
        hyperparameters and carry no per-call machinery (chaos
        injection, op deadlines, degraded pins) — the shard may feed
        their clean observations straight to ``driver.observe`` and
        reserve the per-tenant ladder for everyone else.  Membership is
        re-derived from live state on every read, so a tenant that
        degrades or loses its driver mid-storm rebins automatically.
        """
        if (self.degraded or self.driver is None
                or self.chaos is not None
                or self.spec.op_deadline_s is not None):
            return None
        return (self.spec.tuner, self.spec.tune_np, self.spec.fixed_np,
                self.spec.max_nc)

    @property
    def epochs_done(self) -> int:
        return len(self.records)

    def mean_observed(self) -> float:
        clean = [r.observed for r in self.records if not r.faulted]
        return sum(clean) / len(clean) if clean else 0.0

    # -- transitions -----------------------------------------------------

    def finish(self, state: str, reason: str) -> None:
        if state not in TERMINAL_STATES:
            raise ValueError(f"{state!r} is not a terminal state")
        if self.terminal:
            return
        self.state = state
        self.reason = reason

    def status(self) -> dict:
        """JSON-ready status document (what observe/HTTP return)."""
        last = self.records[-1] if self.records else None
        return {
            "tenant": self.name,
            "state": self.state,
            "reason": self.reason,
            "degraded": self.degraded,
            "epochs_done": self.epochs_done,
            "epochs_budget": self.spec.epochs,
            "restarts": self.restarts,
            "faulted_epochs": self.faulted_epochs,
            "quarantined": self.quarantined,
            "mean_observed_mbps": self.mean_observed(),
            "last_params": list(last.params) if last is not None else None,
            "last_observed_mbps": last.observed if last is not None else None,
            "updates_dropped": self.updates.dropped,
        }
