"""Admission control: bounded queue, token-bucket rate, overload breaker.

The fleet admits tenants through a three-stage ladder:

1. **Capacity + rate** — at most ``capacity`` tenants run concurrently,
   and admits are token-bucket limited (``admit_rate`` tenants/s of
   fleet time, burst up to ``burst``).  A tenant that cannot be
   admitted right now waits in a bounded queue.
2. **Shed with reason** — beyond the queue bound, the tenant is shed
   immediately (``queue-full``); nothing in the fleet ever blocks on
   an unbounded backlog.
3. **Degrade under sustained overload** — an admission
   :class:`~repro.faults.CircuitBreaker` is fed one "epoch" per pump
   round (faulted = the round shed someone).  After
   ``failure_threshold`` consecutive overloaded rounds it opens, and
   while it is not closed every *new* admit is pinned to the safe
   Globus default (nc=2, np=8): late arrivals during a stampede get
   cheap set-and-hold service instead of adding per-epoch restart churn
   to an already-overloaded substrate.  A calm round closes it again
   through the breaker's usual half-open probe.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.faults.breaker import CLOSED, CircuitBreaker
from repro.service.tenant import TenantSpec

#: Shed reasons the controller records.
REASON_QUEUE_FULL = "queue-full"
REASON_DRAINING = "draining"
REASON_DUPLICATE = "duplicate-tenant"


class TokenBucket:
    """Deterministic token bucket on an injected clock.

    Tokens accrue at ``rate`` per second of *fleet* time (the caller
    passes ``now``, typically the shared sim clock), capped at
    ``burst``.  ``rate=None`` disables rate limiting.
    """

    def __init__(self, rate: float | None, burst: float = 1.0) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None)")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        if now > self._last:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate
            )
            self._last = now

    def try_take(self, now: float) -> bool:
        if self.rate is None:
            return True
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class Decision:
    """Outcome of one submit: admitted / queued / shed."""

    tenant: str
    admitted: bool
    queued: bool
    degraded: bool
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "admitted": self.admitted,
            "queued": self.queued,
            "degraded": self.degraded,
            "reason": self.reason,
        }


class AdmissionController:
    """Bounded-queue, rate-limited, breaker-degraded admission."""

    def __init__(
        self,
        *,
        capacity: int = 64,
        queue_limit: int = 128,
        admit_rate: float | None = None,
        burst: float = 8.0,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.bucket = TokenBucket(admit_rate, burst)
        #: Sustained-overload breaker; "fault" = a pump round that shed.
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=2, cooldown_epochs=3
        )
        self.queue: deque[TenantSpec] = deque()
        self.running = 0
        self.closed = False
        self._shed_this_round = 0

    # -- queries ---------------------------------------------------------

    @property
    def degrading(self) -> bool:
        """True while new admits are pinned to the safe default."""
        return self.breaker.state != CLOSED

    def queued(self) -> int:
        return len(self.queue)

    # -- submit / pump ---------------------------------------------------

    def submit(self, spec: TenantSpec, now: float) -> Decision:
        """Admit, queue, or shed one submit at fleet time ``now``."""
        if self.closed:
            self._shed_this_round += 1
            return Decision(spec.tenant, False, False, False,
                            reason=REASON_DRAINING)
        if self.running < self.capacity and self.bucket.try_take(now):
            self.running += 1
            return Decision(spec.tenant, True, False, self.degrading)
        if len(self.queue) < self.queue_limit:
            self.queue.append(spec)
            return Decision(spec.tenant, False, True, False)
        self._shed_this_round += 1
        return Decision(spec.tenant, False, False, False,
                        reason=REASON_QUEUE_FULL)

    def promote(self, now: float) -> list[tuple[TenantSpec, bool]]:
        """Move queued tenants into free capacity; returns
        ``(spec, degraded)`` per admitted tenant."""
        admitted: list[tuple[TenantSpec, bool]] = []
        while (self.queue and self.running < self.capacity
               and self.bucket.try_take(now)):
            spec = self.queue.popleft()
            self.running += 1
            admitted.append((spec, self.degrading))
        return admitted

    def release(self, n: int = 1) -> None:
        """A running tenant reached a terminal state."""
        self.running = max(0, self.running - n)

    def end_round(self) -> str:
        """Close one pump round: feed the overload breaker and return
        its governing state for the next round."""
        state = self.breaker.record_epoch(self._shed_this_round > 0)
        self._shed_this_round = 0
        return state

    def drain(self) -> list[TenantSpec]:
        """Stop admitting; returns the queued tenants to shed."""
        self.closed = True
        dropped = list(self.queue)
        self.queue.clear()
        return dropped
