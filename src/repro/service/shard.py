"""One fleet shard: a shared substrate advancing many tenant sessions.

A :class:`FleetShard` owns one :class:`~repro.sim.engine.Engine` built
from a named scenario — one fluid network + endpoint CPU model that all
of the shard's tenants contend on (competing traffic is *endogenous*:
every tenant is a real session in the max-min allocation, not an
``ext.tfr`` knob).  Tenant sessions are driverless at the engine level;
the engine dispatches every closed control epoch to the shard's
``epoch_sink``, where the shard feeds the tenant's own tuner under the
robustness ladder:

1. faulted / obs-lost epochs never reach the tuner (the fault-aware
   invariant, as in :class:`repro.core.monitor.FaultFilterMonitor`);
2. poisoned observations (NaN/inf/negative) are quarantined: counted,
   added to the tenant's skip set (so restarts withhold them again),
   and the parameters held;
3. the tuner call runs under the tenant's op deadline
   (:class:`~repro.service.backpressure.OpGuard`); a crash or overrun
   is caught *here* — it never propagates into the engine step loop —
   and a supervised tenant is restarted from its epoch records with
   bit-identical tuner state (:mod:`repro.service.supervisor`);
4. a standing steer override replaces the proposal (after the tuner
   observed the epoch, so replay stays aligned).

Because a rebuild consumes no engine RNG draws and the sink's proposal
is deterministic, a crashed-and-restarted tenant's trajectory — epochs
AND steps — is identical to an uninterrupted twin's.
"""

from __future__ import annotations

import math
import time
from collections import Counter

from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.experiments.batch import BatchOccupancy
from repro.faults.schedule import FaultSchedule
from repro.gridftp.transfer import TransferSpec
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry
from repro.service.backpressure import OpGuard
from repro.service.supervisor import Supervisor
from repro.service.tenant import COMPLETED, FAILED, RUNNING, Tenant
from repro.sim.batch.eligibility import unbatchable_lane_reason
from repro.sim.batch.shard import ShardSpanEngine
from repro.sim.engine import Engine, EngineConfig
from repro.sim.session import TransferSession
from repro.sim.trace import EpochRecord


class InjectedCrash(RuntimeError):
    """A chaos-scheduled tenant crash (storm tests)."""


class FleetShard:
    """All tenants of one scenario on one shared engine."""

    def __init__(
        self,
        scenario,
        *,
        seed: int = 0,
        dt: float = 1.0,
        epoch_s: float = 30.0,
        metrics: MetricsRegistry | None = None,
        supervisor: Supervisor | None = None,
        load: LoadSchedule | None = None,
        clock=time.perf_counter,
        batch: bool = True,
    ) -> None:
        if epoch_s <= 0 or epoch_s % dt != 0:
            raise ValueError("epoch_s must be a positive multiple of dt")
        self.scenario = scenario
        self.epoch_s = epoch_s
        self.dt = dt
        self.metrics = metrics
        self.supervisor = supervisor if supervisor is not None else Supervisor()
        self._clock = clock
        self.engine = Engine(
            topology=scenario.build_topology(),
            host=scenario.host,
            sessions=[],
            schedule=(load if load is not None
                      else LoadSchedule.constant(ExternalLoad())),
            config=EngineConfig(dt=dt, seed=seed),
            epoch_sink=self._sink,
        )
        #: Whether epoch windows ride the vectorized span engine when
        #: every lane is eligible (bit-identical either way — the
        #: serial shard is the reference the equivalence tests pin).
        self.batch = batch
        self._span = ShardSpanEngine(self.engine) if batch else None
        self._batched = 0
        self._fallback = 0
        self._chunks = 0
        self._fused = 0
        self._fallback_reasons: Counter = Counter()
        # Dedup guard behind _fallback_reasons: a tenant blocked across
        # many consecutive windows still counts once per (tenant,
        # reason) — the tally answers "how many lanes ever fell back,
        # and why", not "for how many windows".
        self._fallback_seen: set[tuple[str, str]] = set()
        self._latency_hist = (
            None if metrics is None else metrics.histogram(
                "repro_fleet_epoch_latency_seconds",
                LATENCY_BUCKETS_S,
                scenario=scenario.name,
            )
        )
        self.tenants: dict[str, Tenant] = {}
        self._sessions: dict[str, TransferSession] = {}
        #: Callback fired for every closed tenant epoch (fleet journal).
        self.on_epoch = None

    # -- membership ------------------------------------------------------

    @property
    def active(self) -> int:
        return len(self._sessions)

    def attach(self, tenant: Tenant) -> None:
        """Admit one tenant onto the shared substrate."""
        if tenant.name in self.tenants:
            raise ValueError(f"tenant {tenant.name!r} already on this shard")
        spec = TransferSpec(
            name=tenant.name,
            path_name=self.scenario.main_path,
            total_bytes=math.inf,
            max_duration_s=tenant.spec.epochs * self.epoch_s,
            epoch_s=self.epoch_s,
        )
        x0 = (tenant.driver.current if tenant.driver is not None
              else tenant.x0)
        session = TransferSession(
            spec,
            None,
            tenant.space,
            x0,
            param_map=tenant.param_map,
            restart_each_epoch=tenant.restart_each_epoch,
        )
        self.engine.add_session(session)
        self.tenants[tenant.name] = tenant
        self._sessions[tenant.name] = session
        tenant.state = RUNNING

    def session(self, name: str) -> TransferSession:
        return self._sessions[name]

    def mid_epoch(self) -> bool:
        """True while any active session is inside a control epoch."""
        return any(s.epoch_elapsed > 0 for s in self._sessions.values())

    # -- stepping --------------------------------------------------------

    def step_epoch(self) -> list[Tenant]:
        """Advance the substrate one control-epoch window; returns the
        tenants that reached a terminal state this round.

        When batching is on and every active lane is span-eligible, the
        whole window runs on the :class:`ShardSpanEngine` (bit-identical
        epochs AND steps); any blocked lane — the lanes are coupled
        through the shared allocation, so one active fault schedule
        taints the whole window — routes the window to the scalar loop
        and tallies why.  Eligibility is re-checked every window, so a
        shard whose blackout passes rebins back to batched spans with
        no state handoff (both paths drive the same engine)."""
        if self.active:
            steps = int(round(self.epoch_s / self.dt))
            blockers = self._window_blockers() if self.batch else None
            if self.batch and not blockers:
                self._span.advance(steps)
                self._batched += self.active
                self._chunks += 1
                path = "batched"
            else:
                for _ in range(steps):
                    self.engine.step_once()
                self._fallback += self.active
                if blockers:
                    for name, why in blockers.items():
                        if (name, why) not in self._fallback_seen:
                            self._fallback_seen.add((name, why))
                            self._fallback_reasons[why] += 1
                path = "scalar"
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_fleet_epochs_total",
                    scenario=self.scenario.name, path=path,
                ).inc(float(self.active))
        return self.reap()

    def _window_blockers(self) -> dict[str, str]:
        """Why this window cannot batch: the blocked active lanes and
        their reasons (empty when the whole population is
        span-eligible)."""
        reasons: dict[str, str] = {}
        for name, session in self._sessions.items():
            if session.done:
                continue
            why = unbatchable_lane_reason(session)
            if why is not None:
                reasons[name] = why
        return reasons

    def fusible(self) -> bool:
        """Whether this window can join a cross-shard fused advance:
        batching on, at least one active lane, and no blocked lane."""
        return (self.batch and self.active > 0
                and not self._window_blockers())

    def note_fused_window(self) -> list[Tenant]:
        """Account one window the fleet's fused driver already advanced
        (repro.service.fusion) and retire finished tenants — the fused
        sibling of :meth:`step_epoch`'s bookkeeping tail."""
        lanes = self.active
        self._batched += lanes
        self._fused += lanes
        self._chunks += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_fleet_epochs_total",
                scenario=self.scenario.name, path="fused",
            ).inc(float(lanes))
        return self.reap()

    # -- batching introspection ------------------------------------------

    def occupancy(self) -> BatchOccupancy:
        """Tenant-epochs served by each path since shard start."""
        return BatchOccupancy(
            batched=self._batched,
            fallback=self._fallback,
            chunks=self._chunks,
        )

    def fallback_reasons(self) -> dict[str, int]:
        """Tally of per-lane blockers behind the scalar windows."""
        return dict(self._fallback_reasons)

    def lane_widths(self) -> dict[int, int]:
        """Realized span-width distribution: {live lanes -> spans}."""
        if self._span is None:
            return {}
        return dict(self._span.lane_widths)

    def fused_epochs(self) -> int:
        """Tenant-epochs served through cross-shard fused windows (a
        subset of the batched count)."""
        return self._fused

    def phase_seconds(self) -> dict[str, float]:
        """Wall seconds per batched-window phase (span advance, epoch
        close, tuner dispatch) since shard start."""
        if self._span is None:
            return {}
        return dict(self._span.phase_s)

    def dispatch_groups(self) -> dict[str, int]:
        """Active tenants per homogeneous dispatch group ("ladder" =
        tenants that must take the full per-epoch dispatch ladder)."""
        groups: Counter = Counter()
        for name in self._sessions:
            key = self.tenants[name].dispatch_group
            label = "ladder" if key is None else "/".join(map(str, key))
            groups[label] += 1
        return dict(groups)

    def reap(self) -> list[Tenant]:
        """Retire finished sessions from the engine."""
        finished: list[Tenant] = []
        for name in [n for n, s in self._sessions.items() if s.done]:
            session = self._sessions.pop(name)
            self.engine.remove_session(name)
            tenant = self.tenants[name]
            # The engine never dispatches a done session's final epoch
            # (no tuner observes it — same contract as driver-owned
            # sessions); harvest it from the trace so the tenant's
            # record journal holds the complete history.
            for rec in session.trace.epochs[len(tenant.records):]:
                tenant.records.append(rec)
                if self.on_epoch is not None:
                    self.on_epoch(tenant, rec)
            if not tenant.terminal:
                tenant.finish(COMPLETED, "epoch-budget-reached")
            finished.append(tenant)
        return finished

    def cancel(self, name: str, reason: str = "cancelled") -> None:
        """Stop a running tenant; its session is retired on the next
        reap (the engine only removes finished sessions)."""
        session = self._sessions.get(name)
        if session is not None:
            session.failed = True

    def inject_blackout(self, duration_epochs: int = 1) -> None:
        """Black out every active session for the next
        ``duration_epochs`` control epochs (each session's *own* next
        epoch — the shard-outage drill of the acceptance storm)."""
        if duration_epochs < 1:
            raise ValueError("duration_epochs must be >= 1")
        for session in self._sessions.values():
            black = FaultSchedule.blackout(
                session.epoch_index, duration_epochs
            )
            session.fault_schedule = (
                black if session.fault_schedule is None
                else session.fault_schedule.merge(black)
            )

    # -- the epoch sink (runs inside the engine's dispatch) --------------

    def _sink(
        self, session: TransferSession, rec: EpochRecord
    ) -> tuple[int, ...] | None:
        tenant = self.tenants[session.name]
        t0 = self._clock()
        try:
            proposal = self._dispatch(tenant, rec)
        except Exception as exc:  # absolute backstop: isolate the shard
            tenant.finish(FAILED, f"dispatch-error: {type(exc).__name__}")
            session.failed = True
            proposal = None
        finally:
            if self._latency_hist is not None:
                self._latency_hist.observe(max(0.0, self._clock() - t0))
        tenant.records.append(rec)
        tenant.updates.push({
            "epoch": rec.index,
            "params": list(rec.params),
            "observed_mbps": rec.observed,
            "faulted": rec.faulted,
        })
        if self.on_epoch is not None:
            self.on_epoch(tenant, rec)
        if proposal is not None and not tenant.space.contains(proposal):
            proposal = tenant.space.fbnd(proposal)
        return proposal

    def _dispatch(
        self, tenant: Tenant, rec: EpochRecord
    ) -> tuple[int, ...] | None:
        # Homogeneous fast path: a clean epoch of a grouped tenant (no
        # chaos, no deadline, no pin, no standing steer) feeds the
        # tuner directly — semantically identical to the ladder below,
        # which for exactly this case reduces to an inline
        # ``driver.observe`` under ``OpGuard(None)`` with the same
        # crash recovery.  NaN observations fail the ``>= 0.0`` guard
        # and fall through to the quarantine arm of the ladder.
        if (rec.tuned
                and not tenant.terminal
                and tenant.steer_override is None
                and tenant.dispatch_group is not None
                and rec.observed >= 0.0
                and math.isfinite(rec.observed)):
            try:
                return tenant.driver.observe(rec.observed)
            except Exception as exc:
                return self._recover(tenant, rec, rec.observed, exc)
        return self._dispatch_ladder(tenant, rec)

    def _dispatch_ladder(
        self, tenant: Tenant, rec: EpochRecord
    ) -> tuple[int, ...] | None:
        if not rec.tuned:
            # Faulted or obs-lost: the tuner observes nothing and the
            # engine's recovery ladder holds the parameters.
            tenant.faulted_epochs += 1
            return None
        if tenant.degraded or tenant.driver is None or tenant.terminal:
            return None  # pinned (or already failed): hold

        observed = rec.observed
        chaos = tenant.chaos
        if chaos is not None and rec.index in chaos.poison_epochs:
            observed = float("nan")
        if not math.isfinite(observed) or observed < 0:
            # Poisoned observation: quarantined, never fed to the tuner.
            tenant.quarantined += 1
            tenant.skipped.add(rec.index)
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_fleet_quarantined_total",
                    scenario=self.scenario.name,
                ).inc()
            return self._steered(tenant, None)

        def feed() -> tuple[int, ...]:
            if (chaos is not None and rec.index in chaos.crash_epochs
                    and rec.index not in tenant.skipped):
                raise InjectedCrash(f"chaos crash at epoch {rec.index}")
            return tenant.driver.observe(observed)

        guard = OpGuard(tenant.spec.op_deadline_s)
        try:
            proposal = guard.call(f"tuner-observe[{tenant.name}]", feed)
        except Exception as exc:
            proposal = self._recover(tenant, rec, observed, exc)
        return self._steered(tenant, proposal)

    def _recover(
        self,
        tenant: Tenant,
        rec: EpochRecord,
        observed: float,
        exc: Exception,
    ) -> tuple[int, ...] | None:
        """A tuner crash/deadline overrun: quarantine, then either a
        supervised journal restart or a recorded failure."""
        if not tenant.spec.supervised:
            tenant.finish(FAILED, f"tuner-crash: {type(exc).__name__}")
            self._sessions[tenant.name].failed = True
            return None
        try:
            # Rebuild from the records *before* this epoch (the current
            # one is appended after dispatch), then feed it the current
            # observation: the fresh driver lands in the bit-identical
            # state an uninterrupted tuner would hold.
            self.supervisor.restart(tenant)
            proposal = tenant.driver.observe(observed)
        except Exception as rexc:
            tenant.finish(FAILED, f"restart-failed: {type(rexc).__name__}")
            self._sessions[tenant.name].failed = True
            return None
        if self.metrics is not None:
            self.metrics.counter(
                "repro_fleet_restarts_total", scenario=self.scenario.name,
            ).inc()
        return proposal

    @staticmethod
    def _steered(
        tenant: Tenant, proposal: tuple[int, ...] | None
    ) -> tuple[int, ...] | None:
        if tenant.steer_override is not None:
            proposal = tenant.steer_override
            tenant.steer_override = None
            tenant.steered = True
        return proposal
