"""Multi-tenant tuning fleet: shared substrate, admission, supervision.

The service layer turns the single-run simulator into a long-running
tuning fleet: many tenant transfers — each with its own direct-search
tuner — advance on one shared fluid network + endpoint CPU model per
scenario shard, behind admission control, per-tenant isolation, and
graceful drain.  See DESIGN.md §14.
"""

from repro.service.admission import (
    AdmissionController,
    Decision,
    TokenBucket,
)
from repro.service.backpressure import (
    BoundedRing,
    OpDeadlineError,
    OpGuard,
)
from repro.service.drain import GracefulSignals, InFlightGauge
from repro.service.fleet import FleetService
from repro.service.http import FleetApiError, FleetClient, FleetServer
from repro.service.shard import FleetShard, InjectedCrash
from repro.service.supervisor import (
    Supervisor,
    TenantRestartError,
    rebuild_driver,
)
from repro.service.tenant import (
    CANCELLED,
    COMPLETED,
    DRAINED,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    TENANT_STATES,
    TERMINAL_STATES,
    Tenant,
    TenantChaos,
    TenantSpec,
)

__all__ = [
    "AdmissionController",
    "BoundedRing",
    "CANCELLED",
    "COMPLETED",
    "DRAINED",
    "Decision",
    "FAILED",
    "FleetApiError",
    "FleetClient",
    "FleetServer",
    "FleetService",
    "FleetShard",
    "GracefulSignals",
    "InFlightGauge",
    "InjectedCrash",
    "OpDeadlineError",
    "OpGuard",
    "QUEUED",
    "RUNNING",
    "SHED",
    "Supervisor",
    "TENANT_STATES",
    "TERMINAL_STATES",
    "Tenant",
    "TenantChaos",
    "TenantRestartError",
    "TenantSpec",
    "TokenBucket",
]
