"""Cross-shard span fusion: one matrix chain over many shards' lanes.

Each fleet shard owns an independent engine (its own RNG streams, its
own clock), so shards never couple through state — but when several
shards advance through the same control-epoch window, their vectorized
spans run the *same arithmetic* on disjoint row sets.  The span chain
(:func:`repro.sim.batch.shard._span_chain`) is elementwise plus
row-local ``axis=1`` folds: stacking rows from different shards into one
call and splitting the outputs back changes no row's result.  The fused
driver exploits exactly that:

* **lockstep spans** — each iteration takes the global minimum span
  length across the participating shards, collects every shard's
  matrix inputs with its own ``collect_span`` (per-shard allocation,
  per-shard jitter draws from that shard's own stream), stacks the
  rows, runs ONE chain, and commits each shard's slice back.  Splitting
  one shard's natural span at another shard's boundary is exact: the
  fold memos compose (``fold(fold(x, a), b) == fold(x, a + b)`` — both
  are the same sequential ``+= dt``), the step-major jitter draw splits
  at step boundaries into the identical value sequence, and the epoch
  accumulators carry their partial folds through the session state
  between sub-spans;
* **fused dispatch** — each shard's boundary closes produce a pending
  dispatch round; the per-round sized normal pre-draws still come from
  each shard's own streams in the serial order, but the ``exp`` runs
  once over every shard's draws concatenated (elementwise ``np.exp``
  equals ``lognormal_factor``'s scalar ``np.exp`` per element), then
  each shard applies its slice through its own ``_dispatch_epoch``.

The result is bit-identical — epochs AND steps — to every shard running
``ShardSpanEngine.advance`` (and therefore ``step_once``) alone, while
amortizing the numpy call overhead across the whole fleet.  The fleet
service (:meth:`repro.service.fleet.FleetService.pump`) fuses whichever
shards are batch-eligible and clock-compatible each round and reports
the realized fusion widths in ``/v1/status``.
"""

from __future__ import annotations

from itertools import repeat
from time import perf_counter

import numpy as np

from repro.sim.batch.shard import _span_chain

#: Stacked keys of a span context, in :func:`_span_chain` operand
#: order; rows stack along axis 0 for the matrices and the per-row
#: vectors alike.
_CHAIN_KEYS = ("RS", "Z", "c1", "tau", "tss0", "er0", "eb0")


def advance_fused(shards, steps: int) -> dict:
    """Advance every shard's engine ``steps`` steps in fused lockstep.

    Bit-identical to each shard running ``_span.advance(steps)`` on its
    own (shards share no state and no RNG streams — only the stacked
    arithmetic is shared).  Every shard must be span-eligible for the
    whole window (the caller checks
    :func:`~repro.sim.batch.eligibility.unbatchable_lane_reason` per
    lane) and all shards must share one step size.

    Returns fusion stats: ``chains`` (stacked chain calls), ``rows``
    (lane-spans pushed through them), ``widths`` (histogram of rows per
    chain), and the fused driver's wall seconds per phase.
    """
    spans = [sh._span for sh in shards]
    dts = {sp.dt for sp in spans}
    if len(dts) != 1:
        raise ValueError("fused shards must share one step size dt")
    dt = dts.pop()
    phase_s = {"span": 0.0, "close": 0.0, "dispatch": 0.0}
    stats = {"shards": len(spans), "chains": 0, "rows": 0,
             "widths": {}, "phase_s": phase_s}
    for sp in spans:
        sp.prepare()
    rem = [steps] * len(spans)
    while True:
        work = []
        for i, sp in enumerate(spans):
            if rem[i] <= 0:
                continue
            active = [s for s in sp.engine.sessions if not s.done]
            if not active:
                # Pure clock ticks, exactly as the per-shard advance.
                sp.engine.clock.tick += rem[i]
                rem[i] = 0
                continue
            work.append((i, sp, active))
        if not work:
            break
        t0 = perf_counter()
        k = min(sp.span_len(active, sp.engine.clock.tick, rem[i])
                for i, sp, active in work)
        if k < 1:
            raise RuntimeError(
                "fused span prediction collapsed to zero steps"
            )
        parts = []
        for i, sp, active in work:
            tick = sp.engine.clock.tick
            ctx = sp.collect_span(active, tick, k)
            if ctx is not None:
                parts.append((sp, tick, ctx))
        if parts:
            if len(parts) == 1:
                sp, tick, ctx = parts[0]
                out = _span_chain(
                    *(ctx[key] for key in _CHAIN_KEYS), dt)
                sp.commit_span(ctx, out, tick, k)
                width = len(ctx["live"])
            else:
                out = _span_chain(
                    *(np.concatenate(
                        [p[2][key] for p in parts], axis=0)
                      for key in _CHAIN_KEYS),
                    dt,
                )
                pos = 0
                for sp, tick, ctx in parts:
                    n = len(ctx["live"])
                    sub = tuple(a[pos:pos + n] for a in out)
                    sp.commit_span(ctx, sub, tick, k)
                    pos += n
                width = pos
            stats["chains"] += 1
            stats["rows"] += width
            stats["widths"][width] = stats["widths"].get(width, 0) + 1
        for i, sp, active in work:
            sp.engine.clock.tick += k
            rem[i] -= k
        t1 = perf_counter()
        phase_s["span"] += t1 - t0
        _close_fused([sp for _, sp, _ in work], phase_s)
    for sp in spans:
        # Same scalar fast-path cache invalidation as advance().
        sp.engine._alloc_key = None
        sp.engine._alloc_val = None
    return stats


def _close_fused(spans, phase_s) -> None:
    """Close every shard's boundary epochs, then dispatch all pending
    rounds with one ``exp`` over the concatenated pre-draws."""
    t0 = perf_counter()
    chunks = []
    draws = []
    for sp in spans:
        pending = sp.close_pending()
        if not pending:
            continue
        zn, zr = sp.dispatch_normals(len(pending))
        chunks.append((sp, pending, zn, zr))
        if zn is not None:
            draws.append(zn)
        if zr is not None:
            draws.append(zr)
    t1 = perf_counter()
    phase_s["close"] += t1 - t0
    if not chunks:
        return
    flat = np.exp(np.concatenate(draws)) if draws else None
    pos = 0
    for sp, pending, zn, zr in chunks:
        m = len(pending)
        if zn is not None:
            noises = flat[pos:pos + m].tolist()
            pos += m
        else:
            noises = repeat(1.0)
        if zr is not None:
            rjits = flat[pos:pos + m].tolist()
            pos += m
        else:
            rjits = repeat(1.0)
        sp.apply_dispatch(pending, noises, rjits)
    phase_s["dispatch"] += perf_counter() - t1
