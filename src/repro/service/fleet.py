"""The fleet service: submit/observe/steer/cancel over shared shards.

A :class:`FleetService` composes the pieces into one long-running
tuning service:

* one :class:`~repro.service.shard.FleetShard` per named scenario
  (tenants are sharded by the path/endpoint they transfer over);
* one :class:`~repro.service.admission.AdmissionController` in front
  (bounded queue, token-bucket admit rate, shed-with-reason, and a
  sustained-overload breaker that pins late admits to the safe Globus
  default);
* a :class:`~repro.service.supervisor.Supervisor` restarting crashed
  supervised tenants bit-identically from their epoch records;
* fleet Prometheus metrics
  (``repro_fleet_{tenants,admitted,shed,restarts,breaker_transitions}_total``
  plus the ``repro_fleet_epoch_latency_seconds`` histogram) and an
  optional append-only epoch journal
  (:class:`~repro.checkpoint.journal.JournalWriter`) that
  ``repro top --follow`` can watch live.

Time advances in **pump rounds**: one round admits from the queue,
advances every shard by one control-epoch span, retires finished
tenants, and feeds the overload breaker.  Between rounds every session
sits exactly on an epoch boundary, which is what makes
:meth:`FleetService.drain` cheap: finish the round, shed the queue
with a recorded reason, journal final statuses, exit 0.

The service itself is single-threaded and deterministic (same seeds,
same submit order → bit-identical tenant trajectories); the HTTP layer
(:mod:`repro.service.http`) serializes access with one lock.
"""

from __future__ import annotations

from pathlib import Path

from repro.checkpoint.journal import JournalWriter
from repro.experiments.scenarios import SCENARIOS
from repro.obs.metrics import MetricsRegistry
from repro.service.admission import REASON_DRAINING, AdmissionController
from repro.service.fusion import advance_fused
from repro.service.shard import FleetShard
from repro.service.supervisor import Supervisor
from repro.service.tenant import (
    CANCELLED,
    DRAINED,
    QUEUED,
    SHED,
    Tenant,
    TenantChaos,
    TenantSpec,
)

#: Fleet epoch default: much shorter than the paper's 30 s control epoch
#: — a service round, not a GridFTP relaunch cadence; tests override it.
DEFAULT_EPOCH_S = 30.0


class FleetService:
    """A multi-tenant tuning fleet over shared simulated substrates."""

    def __init__(
        self,
        scenarios: dict | None = None,
        *,
        capacity: int = 64,
        queue_limit: int = 128,
        admit_rate: float | None = None,
        burst: float = 8.0,
        seed: int = 0,
        dt: float = 1.0,
        epoch_s: float = DEFAULT_EPOCH_S,
        journal_path: str | Path | None = None,
        metrics: MetricsRegistry | None = None,
        batch: bool = True,
        fusion: bool = True,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.supervisor = Supervisor()
        self.admission = AdmissionController(
            capacity=capacity, queue_limit=queue_limit,
            admit_rate=admit_rate, burst=burst,
        )
        self.admission.breaker.on_transition = self._on_breaker
        self.epoch_s = epoch_s
        self.dt = dt
        self.batch = batch
        #: Whether compatible shards' windows merge into one fused span
        #: and dispatch batch per round (repro.service.fusion) — bit-
        #: identical either way, and meaningless without batching.
        self.fusion = fusion and batch
        self._fusion_stats: dict = {
            "rounds": 0, "epochs": 0, "chains": 0, "rows": 0,
            "widths": {},
            "phase_s": {"span": 0.0, "close": 0.0, "dispatch": 0.0},
        }
        scn = scenarios if scenarios is not None else dict(SCENARIOS)
        if not scn:
            raise ValueError("need at least one scenario shard")
        self.shards: dict[str, FleetShard] = {}
        for i, (name, scenario) in enumerate(sorted(scn.items())):
            shard = FleetShard(
                scenario, seed=seed + i, dt=dt, epoch_s=epoch_s,
                metrics=self.metrics, supervisor=self.supervisor,
                batch=batch,
            )
            shard.on_epoch = self._on_epoch
            self.shards[name] = shard
        #: Every tenant ever admitted (running and terminal).
        self.tenants: dict[str, Tenant] = {}
        #: Chaos staged for queued tenants (applied at admit time).
        self._pending_chaos: dict[str, TenantChaos | None] = {}
        #: Every submit's decision doc, by tenant — the shed-reason
        #: record the acceptance storm audits.
        self.decisions: dict[str, dict] = {}
        self.round = 0
        self.drained = False
        self.journal: JournalWriter | None = None
        if journal_path is not None:
            self.journal = JournalWriter(journal_path)
            self.journal.write_header({
                "service": "fleet",
                "scenarios": sorted(self.shards),
                "capacity": capacity,
                "queue_limit": queue_limit,
                "epoch_s": epoch_s,
                "seed": seed,
                "batch": batch,
                "fusion": self.fusion,
            })

    # -- internal hooks --------------------------------------------------

    @property
    def now_s(self) -> float:
        """Fleet time: rounds completed so far, in epoch seconds."""
        return self.round * self.epoch_s

    def _on_breaker(self, old: str, new: str) -> None:
        self.metrics.counter(
            "repro_fleet_breaker_transitions_total", to=new
        ).inc()
        if self.journal is not None:
            self.journal.write_section(
                "admission-breaker", {"old": old, "new": new,
                                      "round": self.round}
            )

    def _on_epoch(self, tenant: Tenant, rec) -> None:
        if self.journal is not None:
            self.journal.write_epoch(tenant.name, rec, [])

    # -- the public API --------------------------------------------------

    def submit(
        self,
        spec: TenantSpec | dict,
        *,
        chaos: TenantChaos | None = None,
    ) -> dict:
        """Admit/queue/shed one tenant; returns the decision doc."""
        if isinstance(spec, dict):
            spec = TenantSpec.from_dict(spec)
        if self.drained:
            return self._record_shed(spec, REASON_DRAINING)
        if spec.tenant in self.decisions:
            doc = {"tenant": spec.tenant, "admitted": False,
                   "queued": False, "degraded": False,
                   "reason": "duplicate-tenant"}
            self.metrics.counter(
                "repro_fleet_shed_total", reason="duplicate-tenant"
            ).inc()
            return doc
        if spec.scenario not in self.shards:
            raise ValueError(
                f"unknown scenario {spec.scenario!r}; shards: "
                f"{sorted(self.shards)}"
            )
        self.metrics.counter("repro_fleet_tenants_total").inc()
        decision = self.admission.submit(spec, self.now_s)
        doc = decision.to_dict()
        self.decisions[spec.tenant] = doc
        if decision.admitted:
            self._admit(spec, decision.degraded, chaos)
        elif decision.queued:
            self._pending_chaos[spec.tenant] = chaos
        else:
            self.metrics.counter(
                "repro_fleet_shed_total", reason=decision.reason
            ).inc()
        return doc

    def _record_shed(self, spec: TenantSpec, reason: str) -> dict:
        doc = {"tenant": spec.tenant, "admitted": False, "queued": False,
               "degraded": False, "reason": reason}
        self.decisions[spec.tenant] = doc
        self.metrics.counter("repro_fleet_shed_total", reason=reason).inc()
        return doc

    def _admit(
        self, spec: TenantSpec, degraded: bool, chaos: TenantChaos | None
    ) -> Tenant:
        tenant = Tenant(spec, degraded=degraded, chaos=chaos)
        self.tenants[spec.tenant] = tenant
        self.shards[spec.scenario].attach(tenant)
        self.metrics.counter(
            "repro_fleet_admitted_total",
            mode="degraded" if degraded else "normal",
        ).inc()
        if self.journal is not None:
            self.journal.write_section("admit", {
                "tenant": spec.tenant, "round": self.round,
                "degraded": degraded, "spec": spec.to_dict(),
            })
        return tenant

    def observe(self, name: str) -> dict:
        """Current status document for one tenant."""
        tenant = self.tenants.get(name)
        if tenant is not None:
            return tenant.status()
        decision = self.decisions.get(name)
        if decision is None:
            raise KeyError(f"unknown tenant {name!r}")
        if decision.get("queued") and not self.drained:
            return {"tenant": name, "state": QUEUED,
                    "reason": "", "epochs_done": 0}
        return {"tenant": name, "state": SHED,
                "reason": decision.get("reason", ""), "epochs_done": 0}

    def steer(self, name: str, params) -> dict:
        """Override the tenant's next clean-epoch parameters (operator
        intervention; the tuner still observes the epoch, so restarts
        stay replay-consistent)."""
        tenant = self._live_tenant(name)
        if tenant.degraded:
            raise ValueError(f"tenant {name!r} is degraded-pinned")
        override = tenant.space.fbnd(tuple(int(v) for v in params))
        tenant.steer_override = override
        if self.journal is not None:
            self.journal.write_section("steer", {
                "tenant": name, "round": self.round,
                "params": list(override),
            })
        return {"tenant": name, "params": list(override)}

    def cancel(self, name: str) -> dict:
        """Stop a queued or running tenant (reason recorded)."""
        tenant = self.tenants.get(name)
        if tenant is None:
            # Maybe still queued (no Tenant built yet).
            for spec in list(self.admission.queue):
                if spec.tenant == name:
                    self.admission.queue.remove(spec)
                    self._pending_chaos.pop(name, None)
                    self.decisions[name] = {
                        "tenant": name, "admitted": False, "queued": False,
                        "degraded": False, "reason": "cancelled",
                    }
                    return {"tenant": name, "state": CANCELLED}
            raise KeyError(f"unknown tenant {name!r}")
        if tenant.terminal:
            return {"tenant": name, "state": tenant.state}
        tenant.finish(CANCELLED, "cancel-requested")
        self.shards[tenant.spec.scenario].cancel(name)
        if self.journal is not None:
            self.journal.write_section("cancel", {
                "tenant": name, "round": self.round,
            })
        return {"tenant": name, "state": CANCELLED}

    def _live_tenant(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise KeyError(f"unknown (or not yet admitted) tenant {name!r}")
        if tenant.terminal:
            raise ValueError(f"tenant {name!r} is {tenant.state}")
        return tenant

    # -- driving ---------------------------------------------------------

    def pump(self) -> dict:
        """One service round: promote from the queue, advance every
        shard one control epoch, retire finished tenants, feed the
        overload breaker.

        With fusion on, every shard whose window is batch-eligible this
        round joins one cross-shard fused advance (same dt and window
        length by construction, so their clocks stay compatible);
        blocked or singleton shards take their own :meth:`FleetShard.
        step_epoch` path.  Either way each shard's trajectory is
        bit-identical — shards share no state and no RNG streams."""
        if self.drained:
            raise RuntimeError("fleet already drained")
        for spec, degraded in self.admission.promote(self.now_s):
            self._admit(spec, degraded, self._pending_chaos.pop(
                spec.tenant, None))
        finished: list[Tenant] = []
        fused: list[FleetShard] = []
        if self.fusion:
            fused = [sh for sh in self.shards.values() if sh.fusible()]
            if len(fused) < 2:
                fused = []  # nothing to amortize across
        if fused:
            stats = advance_fused(
                fused, int(round(self.epoch_s / self.dt)))
            self._note_fusion(stats, fused)
            for shard in fused:
                finished.extend(shard.note_fused_window())
        skip = {id(sh) for sh in fused}
        for shard in self.shards.values():
            if id(shard) in skip:
                continue
            finished.extend(shard.step_epoch())
        if finished:
            self.admission.release(len(finished))
        self.admission.end_round()
        self.round += 1
        return {
            "round": self.round,
            "active": self.active_count(),
            "queued": self.admission.queued(),
            "finished": [t.name for t in finished],
        }

    def _note_fusion(self, stats: dict, shards: list) -> None:
        f = self._fusion_stats
        f["rounds"] += 1
        f["epochs"] += sum(sh.active for sh in shards)
        f["chains"] += stats["chains"]
        f["rows"] += stats["rows"]
        for w, n in stats["widths"].items():
            f["widths"][w] = f["widths"].get(w, 0) + n
        for key, v in stats["phase_s"].items():
            f["phase_s"][key] += v

    def drive(self, max_rounds: int = 10_000) -> int:
        """Pump until every admitted tenant is terminal and the queue is
        empty; returns the number of rounds run."""
        start = self.round
        while (self.active_count() or self.admission.queued()):
            if self.round - start >= max_rounds:
                raise RuntimeError(
                    f"fleet did not settle within {max_rounds} rounds"
                )
            self.pump()
        return self.round - start

    def active_count(self) -> int:
        return sum(shard.active for shard in self.shards.values())

    def inject_blackout(self, scenario: str, duration_epochs: int = 1) -> None:
        """Black out one shard (acceptance-storm drill)."""
        self.shards[scenario].inject_blackout(duration_epochs)

    # -- shutdown --------------------------------------------------------

    def drain(self) -> dict:
        """Graceful shutdown: stop admitting, shed the queue with a
        recorded reason, finish in-flight epochs, journal final
        statuses.  Idempotent."""
        if self.drained:
            return {"drained": 0, "shed": 0}
        for spec in self.admission.drain():
            self._pending_chaos.pop(spec.tenant, None)
            self._record_shed(spec, REASON_DRAINING)
        # Between rounds every session sits on an epoch boundary; if a
        # caller drains mid-round (a signal landed inside pump), finish
        # the in-flight epochs first.
        drained = 0
        for shard in self.shards.values():
            while shard.mid_epoch():
                shard.engine.step_once()
            shard.reap()
            for tenant in shard.tenants.values():
                if not tenant.terminal:
                    tenant.finish(DRAINED, "service-drained")
                    drained += 1
        self.admission.release(drained)
        self.drained = True
        if self.journal is not None:
            self.journal.write_section("drain", {
                "round": self.round,
                "tenants": {t.name: t.status()
                            for t in self.tenants.values()},
            })
            self.journal.write_end()
            self.journal.close()
        shed = sum(1 for d in self.decisions.values()
                   if d.get("reason") == REASON_DRAINING)
        return {"drained": drained, "shed": shed}

    # -- introspection ---------------------------------------------------

    def status(self) -> dict:
        """Fleet-level status document."""
        states: dict[str, int] = {}
        for tenant in self.tenants.values():
            states[tenant.state] = states.get(tenant.state, 0) + 1
        latency = None
        fam = self.metrics.collect().get(
            "repro_fleet_epoch_latency_seconds", {})
        hists = list(fam.values())
        if hists:
            merged = hists[0]
            for h in hists[1:]:
                merged = merged.merge(h)
            latency = {"p50_s": merged.quantile(0.5),
                       "p99_s": merged.quantile(0.99),
                       "count": merged.count}
        return {
            "round": self.round,
            "drained": self.drained,
            "active": self.active_count(),
            "queued": self.admission.queued(),
            "degrading": self.admission.degrading,
            "breaker": self.admission.breaker.state,
            "states": states,
            "restarts": self.supervisor.restarts,
            "epoch_latency": latency,
            "shards": {name: shard.active
                       for name, shard in self.shards.items()},
            "batch": {
                name: {
                    "enabled": shard.batch,
                    "occupancy": shard.occupancy().to_dict(),
                    "fused_epochs": shard.fused_epochs(),
                    "fallback_reasons": shard.fallback_reasons(),
                    "lane_widths": {
                        str(w): n
                        for w, n in sorted(shard.lane_widths().items())
                    },
                    "dispatch_groups": shard.dispatch_groups(),
                    "phase_s": shard.phase_seconds(),
                }
                for name, shard in self.shards.items()
            },
            "fusion": {
                "enabled": self.fusion,
                "rounds": self._fusion_stats["rounds"],
                "epochs": self._fusion_stats["epochs"],
                "chains": self._fusion_stats["chains"],
                "rows": self._fusion_stats["rows"],
                "widths": {
                    str(w): n for w, n in
                    sorted(self._fusion_stats["widths"].items())
                },
                "phase_s": dict(self._fusion_stats["phase_s"]),
            },
        }

    def prometheus(self) -> str:
        return self.metrics.render_prometheus()
