"""Tenant supervision: quarantine crashes, restart from the journal.

When a tenant's tuner raises (or overruns its op deadline), the shard
discards the broken driver and asks the supervisor for a replacement.
The supervisor rebuilds a *fresh* driver from the tenant's epoch
records — the same observation-replay contract as
:mod:`repro.checkpoint.replay` — so the restarted tuner holds the
bit-identical search state an uninterrupted run would hold.  The
substrate is untouched (no engine RNG draw happens during a rebuild),
which is what makes supervised restarts invisible in the trace: a
crashed-and-restarted tenant's epochs AND steps equal its crash-free
twin's.

Tenants whose history is "plain" (no steering, no quarantined
observations) go through :func:`repro.checkpoint.replay.replay_epochs`
with full per-epoch verification; steered or quarantined tenants use
the same dispatch ladder minus the record checks (their journaled
params legitimately diverge from the driver's own proposals).
"""

from __future__ import annotations

from repro.checkpoint.replay import replay_epochs
from repro.core.base import TunerDriver
from repro.core.registry import make_tuner
from repro.sim.trace import EpochRecord


class TenantRestartError(RuntimeError):
    """The supervisor could not rebuild a consistent driver."""


def rebuild_driver(
    spec,
    records: list[EpochRecord],
    skipped: set[int],
    *,
    steered: bool = False,
) -> TunerDriver:
    """A fresh driver holding the state after replaying ``records``.

    ``records`` are the tenant's closed epochs *before* the epoch being
    dispatched when the crash happened (the shard feeds that epoch's
    observation to the returned driver itself).  ``skipped`` holds the
    epoch indices whose observations were quarantined and must be
    withheld again.
    """
    tuner = make_tuner(spec.tuner, spec.seed)
    space, _pmap = spec.space_and_map()
    x0 = spec.start_point()
    if not skipped and not steered:
        # Plain history: the full checkpoint replay ladder, verifying
        # every journaled epoch against the recomputed trajectory.
        result = replay_epochs(
            tuner, space, x0, records,
            retry_policy=None, breaker=None, verify=True,
        )
        return result.driver
    driver = tuner.start(x0, space)
    for rec in records:
        if rec.tuned and rec.index not in skipped:
            driver.observe(rec.observed)
    return driver


class Supervisor:
    """Counts and performs supervised tenant restarts."""

    def __init__(self) -> None:
        self.restarts = 0

    def restart(self, tenant) -> TunerDriver:
        """Replace ``tenant.driver`` with a journal-rebuilt one.

        Raises :class:`TenantRestartError` when the replay itself fails
        (a corrupted record list) — the caller fails the tenant rather
        than run it with undefined search state.
        """
        try:
            driver = rebuild_driver(
                tenant.spec, tenant.records, tenant.skipped,
                steered=tenant.steered,
            )
        except Exception as exc:
            raise TenantRestartError(
                f"tenant {tenant.name!r}: restart replay failed: {exc}"
            ) from exc
        tenant.driver = driver
        tenant.restarts += 1
        self.restarts += 1
        return driver
