"""Graceful shutdown: signal handling and in-flight draining.

Shared by the fleet service (``repro serve``) and the cache server
(``repro cache serve``): a SIGTERM/SIGINT flips a drain event, the
server stops accepting new work, finishes what is in flight, journals
its state, and exits 0 — the contract supervisors (systemd, k8s)
expect from a well-behaved service.

:class:`GracefulSignals` installs the handlers (restoring the previous
ones on exit, so tests can nest it) and :class:`InFlightGauge` counts
in-flight requests so the drain can wait for them without tracking
individual threads.
"""

from __future__ import annotations

import signal
import threading
import time


class GracefulSignals:
    """Install SIGTERM/SIGINT handlers that set a drain event.

    The handler never raises and never does work — it only records the
    signal and sets :attr:`triggered`; the serving loop polls (or
    waits on) the event and performs the actual drain on its own
    thread.  Use as a context manager; previous handlers are restored
    on exit.  Signal handlers can only be installed from the main
    thread — ``install`` degrades to a no-op elsewhere (the drain
    event still works when set programmatically).
    """

    SIGNALS = (signal.SIGTERM, signal.SIGINT)

    def __init__(self, on_signal=None) -> None:
        self.triggered = threading.Event()
        self.signum: int | None = None
        self.on_signal = on_signal
        self._previous: dict[int, object] = {}
        self._installed = False

    def _handler(self, signum, frame) -> None:
        self.signum = signum
        self.triggered.set()
        if self.on_signal is not None:
            self.on_signal(signum)

    def install(self) -> "GracefulSignals":
        if threading.current_thread() is not threading.main_thread():
            return self
        for sig in self.SIGNALS:
            self._previous[sig] = signal.getsignal(sig)
            signal.signal(sig, self._handler)
        self._installed = True
        return self

    def restore(self) -> None:
        if not self._installed:
            return
        for sig, prev in self._previous.items():
            signal.signal(sig, prev)
        self._previous.clear()
        self._installed = False

    def __enter__(self) -> "GracefulSignals":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.restore()


class InFlightGauge:
    """Thread-safe in-flight counter with an idle wait.

    Request handlers bracket their work with ``with gauge:``; the
    drain calls :meth:`wait_idle` to let in-flight requests finish
    (bounded by a timeout — a wedged handler must not wedge the
    drain).
    """

    def __init__(self) -> None:
        self._count = 0
        self._lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self.peak = 0

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def enter(self) -> None:
        with self._lock:
            self._count += 1
            self.peak = max(self.peak, self._count)
            self._idle.clear()

    def exit(self) -> None:
        with self._lock:
            if self._count > 0:
                self._count -= 1
            if self._count == 0:
                self._idle.set()

    def __enter__(self) -> "InFlightGauge":
        self.enter()
        return self

    def __exit__(self, *exc) -> None:
        self.exit()

    def wait_idle(self, timeout_s: float = 10.0) -> bool:
        """Block until no request is in flight; False on timeout."""
        return self._idle.wait(timeout_s)


def wait_for(predicate, timeout_s: float, poll_s: float = 0.01) -> bool:
    """Poll ``predicate()`` until true or ``timeout_s`` elapses."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return bool(predicate())
