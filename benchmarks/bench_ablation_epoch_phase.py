"""Ablation — temporal ordering of control epochs (paper §IV-D question).

Explaining Fig. 11's lopsided bandwidth split, the paper speculates the
cause "may be due to different RTTs or loss rates, or to the temporal
ordering of control epochs".  The simulator can answer the part a testbed
cannot isolate: re-run the simultaneous-transfer experiment with the two
tuners' control epochs (a) synchronized — both tuners measure and move at
the same instants, each always evaluating against the other's *new*
setting — and (b) phase-shifted by half an epoch.
"""

import math

from repro.core.nm_tuner import NmTuner
from repro.core.params import concurrency_parallelism_space
from repro.experiments.report import render_table
from repro.experiments.scenarios import ANL_UC
from repro.gridftp.transfer import TransferSpec
from repro.sim.engine import Engine, EngineConfig
from repro.sim.session import ParamMap, TransferSession

DURATION_S = 1800.0


def _session(name, path, offset_s):
    spec = TransferSpec(
        name=name, path_name=path, total_bytes=math.inf,
        max_duration_s=DURATION_S, epoch_s=30.0, epoch_offset_s=offset_s,
    )
    return TransferSession(
        spec, NmTuner(), concurrency_parallelism_space(), (2, 8),
        param_map=ParamMap.nc_np(), restart_each_epoch=True,
    )


def _run(offset_s: float, seed: int = 0):
    sessions = [
        _session("xfer-uc", "anl-uc", 0.0),
        _session("xfer-tacc", "anl-tacc", offset_s),
    ]
    engine = Engine(
        topology=ANL_UC.build_topology(), host=ANL_UC.host,
        sessions=sessions, config=EngineConfig(seed=seed),
    )
    traces = engine.run()
    uc = traces["xfer-uc"].mean_observed(from_time=DURATION_S / 2)
    tacc = traces["xfer-tacc"].mean_observed(from_time=DURATION_S / 2)
    return uc, tacc


def test_ablation_epoch_phase(benchmark, report):
    def _both():
        return {
            "synchronized": _run(0.0),
            "half-epoch offset": _run(15.0),
        }

    results = benchmark.pedantic(_both, rounds=1, iterations=1)

    rows = []
    for label, (uc, tacc) in results.items():
        rows.append(
            [label, uc, tacc, uc + tacc, f"{100 * uc / (uc + tacc):.0f}%"]
        )
    report(
        render_table(
            ["epoch phase", "anl-uc", "anl-tacc", "total", "UC share"],
            rows,
            title=(
                "Ablation: control-epoch phase of two simultaneous "
                "nm-tuned transfers (Fig. 11's open question)"
            ),
        )
    )

    # Both phasings must keep the system functional, and the UC transfer
    # holds the majority share either way — phase ordering alone does not
    # explain Fig. 11's asymmetry (the 2x path capacity does).
    for label, (uc, tacc) in results.items():
        assert uc > 0 and tacc > 0, label
        assert uc > tacc, label
