"""Ablation — change-detector choice in the outer monitoring loop.

The paper's Δc rule (|relative change| > ε between consecutive epochs)
fires readily on noise, so the tuners spend epochs re-searching even when
nothing changed.  This ablation swaps the detector (Δc vs EWMA vs CUSUM)
inside nm-tuner and measures the effect in two regimes:

* a *static* load, where false alarms only waste epochs; and
* the §IV-B *load switch*, where a deaf detector misses real changes.
"""

from repro.analysis.stats import steady_state_mean
from repro.core.monitor import CusumMonitor, DeltaPctMonitor, EwmaMonitor
from repro.core.nm_tuner import NmTuner
from repro.endpoint.load import ExternalLoad
from repro.experiments.figures import varying_load_schedule
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC

MONITORS = {
    "delta (paper)": lambda: DeltaPctMonitor(eps_pct=5.0),
    "ewma": lambda: EwmaMonitor(alpha=0.3, band_pct=10.0),
    "cusum": lambda: CusumMonitor(k_pct=3.0, h_pct=12.0),
}


def test_ablation_change_monitor(benchmark, report):
    def _race():
        static_load = ExternalLoad(ext_cmp=16)
        switch = varying_load_schedule(900.0)
        out = {}
        for name, factory in MONITORS.items():
            t_static = run_single(
                ANL_UC, NmTuner(monitor=factory()), load=static_load,
                duration_s=1800.0, seed=1,
            )
            t_switch = run_single(
                ANL_UC, NmTuner(monitor=factory()), load=switch,
                duration_s=1800.0, seed=1,
            )
            out[name] = (
                steady_state_mean(t_static),
                t_switch.mean_observed(from_time=1200.0),
            )
        return out

    results = benchmark.pedantic(_race, rounds=1, iterations=1)

    rows = [
        [name, static, post_switch]
        for name, (static, post_switch) in results.items()
    ]
    report(
        render_table(
            ["monitor", "static cmp16 MB/s", "post-switch MB/s"],
            rows,
            title="Ablation: change detector inside nm-tuner",
        )
    )

    # Every detector must keep the tuner functional in both regimes.
    for name, (static, post_switch) in results.items():
        assert static > 400, name
        assert post_switch > 400, name
