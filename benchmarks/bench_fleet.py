"""Fleet service throughput: storm robustness plus batched-shard speedup.

Two workloads:

* **Storm** — a burst of heterogeneous tenants through the full service
  (admission, supervision, 20% injected crashes) reporting sustained
  completion throughput, p99 epoch latency, and Jain fairness.

* **Batched shards (flagship)** — a 64-tenant homogeneous storm on one
  shard, serial scalar loop vs the :class:`ShardSpanEngine` vectorized
  window path, traces bit-identical tenant for tenant (epochs AND
  steps).  The committed target (and the CI ``fleet-batch`` job's
  ``--floor``) is **>= 3x** tenants/sec; the measurement runs at
  ``epoch_s=30, dt=0.25`` — the fleet's canonical 30 s control epoch at
  fine fluid resolution, the regime the span path is built for (the
  vector advantage scales with steps per window; scalar-side dispatch
  cost is per-epoch and identical on both sides).

Measurement is interleaved best-of-N (garbage-collect, time serial,
time batched, repeat) so load spikes hurt both sides instead of skewing
the ratio.  The committed results record ``os.cpu_count()``, the batch
occupancy counters, and the realized lane-width distribution — both
paths are single-process, but allocator/BLAS behavior varies across
hosts, so the context rides along.

Script mode is the CI ``fleet-batch`` perf gate::

    PYTHONPATH=src python benchmarks/bench_fleet.py --quick --floor 3

exits nonzero if the speedup falls below the floor or any tenant
diverges from its scalar twin.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time

from repro.experiments.report import render_table
from repro.experiments.scenarios import SCENARIOS
from repro.service import FleetService
from repro.service.shard import FleetShard
from repro.service.tenant import COMPLETED, Tenant, TenantChaos, TenantSpec

N_TENANTS = 48
CAPACITY = 24
QUEUE = 36
EPOCHS = 4
MIN_JAIN = 0.9
MAX_CRASH_SLOWDOWN = 2.0

# Flagship batched-shard storm.
B = 64
B_EPOCHS = 6
B_EPOCH_S = 30.0
B_DT = 0.25
TARGET_SPEEDUP = 3.5  # committed target; CI passes --floor 3
GATE_SPEEDUP = 3.0  # the acceptance floor (box noise eats the margin)


def _jain(xs):
    return sum(xs) ** 2 / (len(xs) * sum(x * x for x in xs))


def _storm(*, crashes: bool):
    fleet = FleetService(
        {name: SCENARIOS[name] for name in ("anl-uc", "anl-tacc")},
        capacity=CAPACITY, queue_limit=QUEUE,
        epoch_s=5.0, dt=1.0, seed=0,
    )
    for i in range(N_TENANTS):
        chaos = None
        if crashes and i % 5 == 0:
            # Crashes land on dispatchable epochs (1..EPOCHS-2).
            chaos = TenantChaos(crash_epochs=(1 + i % (EPOCHS - 2),))
        fleet.submit({
            "tenant": f"t-{i:03d}",
            "scenario": ("anl-uc", "anl-tacc")[i % 2],
            "tuner": ("cd", "nm", "spsa")[i % 3],
            "seed": i,
            "epochs": EPOCHS,
        }, chaos=chaos)
    t0 = time.perf_counter()
    fleet.drive()
    wall_s = time.perf_counter() - t0
    return fleet, wall_s


def test_fleet_storm_throughput(report):
    rows = []
    walls = {}
    for label, crashes in (("clean", False), ("20% crashes", True)):
        fleet, wall_s = _storm(crashes=crashes)
        status = fleet.status()
        completed = status["states"].get(COMPLETED, 0)
        assert completed == N_TENANTS, status["states"]
        restarts = fleet.supervisor.restarts
        assert restarts > 0 if crashes else restarts == 0
        jain = _jain([len(t.records) for t in fleet.tenants.values()])
        assert jain >= MIN_JAIN, f"{label}: Jain fairness {jain:.3f}"
        latency = status["epoch_latency"]
        walls[label] = wall_s
        rows.append([
            label,
            f"{completed / wall_s:.1f}",
            f"{1e3 * latency['p50_s']:.2f}",
            f"{1e3 * latency['p99_s']:.2f}",
            f"{jain:.3f}",
            restarts,
        ])
    slowdown = walls["20% crashes"] / walls["clean"]
    report(
        render_table(
            ["fleet", "tenants/s", "p50 epoch ms", "p99 epoch ms",
             "Jain fairness", "restarts"],
            rows,
            title=(
                f"Fleet storm, {N_TENANTS} tenants x {EPOCHS} epochs over "
                f"{CAPACITY} slots (supervision overhead {slowdown:.2f}x; "
                f"fairness floor {MIN_JAIN})"
            ),
        )
    )
    assert slowdown <= MAX_CRASH_SLOWDOWN, (
        f"supervised restarts cost {slowdown:.2f}x "
        f"(clean {walls['clean']:.2f}s, "
        f"crashed {walls['20% crashes']:.2f}s)"
    )


# -- flagship: batched shard vs serial shard ---------------------------------


def _run_shard(batch: bool):
    """One 64-tenant homogeneous storm on a single shard; returns
    (wall_s, tenants, sessions, shard)."""
    shard = FleetShard(SCENARIOS["anl-uc"], seed=7, dt=B_DT,
                       epoch_s=B_EPOCH_S, batch=batch)
    tenants = [
        Tenant(TenantSpec(tenant=f"s{i:03d}", scenario="anl-uc",
                          tuner="cd", seed=i, epochs=B_EPOCHS,
                          supervised=True))
        for i in range(B)
    ]
    sessions = {}
    for t in tenants:
        shard.attach(t)
        sessions[t.name] = shard.session(t.name)
    t0 = time.perf_counter()
    for _ in range(200):
        shard.step_epoch()
        if not shard.active:
            break
    return time.perf_counter() - t0, tenants, sessions, shard


def shard_measurement(rounds: int):
    """Interleaved best-of-``rounds``; returns
    (serial_s, batch_s, speedup, identical, shard)."""
    best_serial = best_batch = float("inf")
    for _ in range(rounds):
        gc.collect()
        serial_s, ts, ss, _ = _run_shard(False)
        best_serial = min(best_serial, serial_s)
        gc.collect()
        batch_s, tb, sb, shard = _run_shard(True)
        best_batch = min(best_batch, batch_s)
    identical = all(
        x.records == y.records
        and ss[x.name].trace.steps == sb[y.name].trace.steps
        for x, y in zip(ts, tb)
    )
    return best_serial, best_batch, best_serial / best_batch, identical, shard


def _shard_block(serial_s, batch_s, speedup, identical, shard, rounds):
    occ = shard.occupancy()
    widths = ", ".join(
        f"{w}:{n}" for w, n in sorted(shard.lane_widths().items())
    )
    return render_table(
        ["shard path", "wall s", "tenants/s"],
        [
            ["serial scalar", f"{serial_s:.3f}", f"{B / serial_s:.1f}"],
            ["batched spans", f"{batch_s:.3f}", f"{B / batch_s:.1f}"],
        ],
        title=(f"batched fleet shard: {B} cd-tenants x {B_EPOCHS} epochs, "
               f"epoch_s={B_EPOCH_S:.0f} dt={B_DT}, best of {rounds} "
               "interleaved"),
    ) + (
        f"\n\nspeedup {speedup:.2f}x (target >= {TARGET_SPEEDUP:.1f}x); "
        f"all {B} tenants bit-identical (epochs AND steps): "
        f"{'yes' if identical else 'NO'}"
        f"\ncpu_count {os.cpu_count()}; occupancy batched={occ.batched} "
        f"fallback={occ.fallback} chunks={occ.chunks} "
        f"(fallback rate {occ.fallback_rate:.2f})"
        f"\nlane widths (live lanes : spans) {widths}"
    )


def test_bench_batched_shard_speedup(report):
    serial_s, batch_s, speedup, identical, shard = shard_measurement(5)
    report(_shard_block(serial_s, batch_s, speedup, identical, shard, 5))
    assert identical, "a batched tenant diverged from its scalar twin"
    assert speedup >= GATE_SPEEDUP


# -- CI fleet-batch perf gate ------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds for the CI gate")
    parser.add_argument("--floor", type=float, default=TARGET_SPEEDUP,
                        help="fail below this speedup")
    args = parser.parse_args(argv)
    rounds = 3 if args.quick else 5

    serial_s, batch_s, speedup, identical, shard = shard_measurement(rounds)
    print(_shard_block(serial_s, batch_s, speedup, identical, shard,
                       rounds))

    failed = False
    if not identical:
        print("\nFAIL: a batched tenant diverged from its scalar twin")
        failed = True
    if speedup < args.floor:
        print(f"\nFAIL: shard speedup {speedup:.2f}x < "
              f"{args.floor:.1f}x floor")
        failed = True
    if not failed:
        print(f"\nOK: {speedup:.2f}x at {B} tenants, traces bit-identical")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
