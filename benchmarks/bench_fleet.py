"""Fleet service throughput: sustained tenants/sec, tail latency, fairness.

The multi-tenant fleet (:mod:`repro.service`) runs many tuning tenants
over one shared engine substrate per scenario.  This bench drives a
burst of tenants through the service — clean, then with 20% injected
tuner crashes absorbed by supervised restarts — and reports sustained
completion throughput, the p99 epoch-dispatch latency from the fleet's
own metrics histogram, and the Jain fairness index of per-tenant epoch
service.  Supervision must cost little and fairness must stay near 1:
the substrate advances every resident tenant one epoch per round, so
nobody starves.
"""

import time

from repro.experiments.report import render_table
from repro.experiments.scenarios import SCENARIOS
from repro.service import FleetService
from repro.service.tenant import COMPLETED, TenantChaos

N_TENANTS = 48
CAPACITY = 24
QUEUE = 36
EPOCHS = 4
MIN_JAIN = 0.9
MAX_CRASH_SLOWDOWN = 2.0


def _jain(xs):
    return sum(xs) ** 2 / (len(xs) * sum(x * x for x in xs))


def _storm(*, crashes: bool):
    fleet = FleetService(
        {name: SCENARIOS[name] for name in ("anl-uc", "anl-tacc")},
        capacity=CAPACITY, queue_limit=QUEUE,
        epoch_s=5.0, dt=1.0, seed=0,
    )
    for i in range(N_TENANTS):
        chaos = None
        if crashes and i % 5 == 0:
            # Crashes land on dispatchable epochs (1..EPOCHS-2).
            chaos = TenantChaos(crash_epochs=(1 + i % (EPOCHS - 2),))
        fleet.submit({
            "tenant": f"t-{i:03d}",
            "scenario": ("anl-uc", "anl-tacc")[i % 2],
            "tuner": ("cd", "nm", "spsa")[i % 3],
            "seed": i,
            "epochs": EPOCHS,
        }, chaos=chaos)
    t0 = time.perf_counter()
    fleet.drive()
    wall_s = time.perf_counter() - t0
    return fleet, wall_s


def test_fleet_storm_throughput(report):
    rows = []
    walls = {}
    for label, crashes in (("clean", False), ("20% crashes", True)):
        fleet, wall_s = _storm(crashes=crashes)
        status = fleet.status()
        completed = status["states"].get(COMPLETED, 0)
        assert completed == N_TENANTS, status["states"]
        restarts = fleet.supervisor.restarts
        assert restarts > 0 if crashes else restarts == 0
        jain = _jain([len(t.records) for t in fleet.tenants.values()])
        assert jain >= MIN_JAIN, f"{label}: Jain fairness {jain:.3f}"
        latency = status["epoch_latency"]
        walls[label] = wall_s
        rows.append([
            label,
            f"{completed / wall_s:.1f}",
            f"{1e3 * latency['p50_s']:.2f}",
            f"{1e3 * latency['p99_s']:.2f}",
            f"{jain:.3f}",
            restarts,
        ])
    slowdown = walls["20% crashes"] / walls["clean"]
    report(
        render_table(
            ["fleet", "tenants/s", "p50 epoch ms", "p99 epoch ms",
             "Jain fairness", "restarts"],
            rows,
            title=(
                f"Fleet storm, {N_TENANTS} tenants x {EPOCHS} epochs over "
                f"{CAPACITY} slots (supervision overhead {slowdown:.2f}x; "
                f"fairness floor {MIN_JAIN})"
            ),
        )
    )
    assert slowdown <= MAX_CRASH_SLOWDOWN, (
        f"supervised restarts cost {slowdown:.2f}x "
        f"(clean {walls['clean']:.2f}s, "
        f"crashed {walls['20% crashes']:.2f}s)"
    )
