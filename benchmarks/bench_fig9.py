"""Figure 9 — the Fig. 8 study (nc+np tuning under a load switch) on the
ANL→UChicago path.  Paper: "We observed a similar trend for ANL to
UChicago transfers."
"""

from repro.experiments.figures import fig9
from repro.experiments.report import downsample, render_comparison, render_series


def test_fig9_uchicago_varying_load(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig9(duration_s=1800.0, switch_at_s=1000.0, seed=0),
        rounds=1,
        iterations=1,
    )

    tr = result.traces["nm-tuner"]
    times = downsample(tr.epoch_times().tolist(), 15)
    series = {
        name: downsample(result.traces[name].epoch_observed().tolist(), 15)
        for name in ("default", "cs-tuner", "nm-tuner")
    }
    throughput = render_series(
        times, series, title="Fig 9: observed throughput (MB/s) over time"
    )
    comparison = render_comparison(
        [
            ("trend similar to Fig 8", "yes", "see below"),
            ("phase-1 improvement (nm)", "> 1x",
             f"{result.improvement('nm-tuner', 0):.1f}x"),
            ("phase-2 improvement (nm)", "> 1x",
             f"{result.improvement('nm-tuner', 1):.1f}x"),
        ],
        title="Fig 9: paper vs measured",
    )
    report(throughput + "\n\n" + comparison)

    for tuner in ("cs-tuner", "nm-tuner"):
        assert result.improvement(tuner, 0) > 1.0
        assert result.improvement(tuner, 1) > 1.0
