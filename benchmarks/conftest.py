"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark runs one figure's experiment (full-fidelity scale unless
noted), times it via pytest-benchmark, and emits the figure's rows/series
as text — printed to the terminal (visible with ``-s``) and saved under
``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report(request):
    """Callable that prints a report block and persists it per-bench."""

    def _report(text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        name = request.node.name.replace("/", "_")
        out = RESULTS_DIR / f"{name}.txt"
        out.write_text(text + "\n")
        print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")

    return _report
