"""Figure 11 — two simultaneously tuned transfers sharing the source NIC.

Paper: ANL→UChicago and ANL→TACC transfers, each independently tuned by
nm-tuner (or cs-tuner) with no other external load.  The UChicago
transfer's tuner adopts many streams and claims the larger fraction of the
shared outgoing NIC; the TACC transfer responds by raising its own stream
count.  We additionally run the paper's proposed remedy (§IV-D): one
*joint* tuner for both transfers.
"""

from repro.core.nm_tuner import NmTuner
from repro.experiments.figures import fig11
from repro.experiments.report import downsample, render_comparison, render_series
from repro.experiments.runner import run_joint
from repro.experiments.scenarios import ANL_UC


def test_fig11_simultaneous_tuning(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig11(tuner="nm", duration_s=1800.0, seed=0),
        rounds=1,
        iterations=1,
    )

    uc, tacc = result.traces["anl-uc"], result.traces["anl-tacc"]
    times = downsample(uc.epoch_times().tolist(), 15)
    throughput = render_series(
        times,
        {
            "anl-uc": downsample(uc.epoch_observed().tolist(), 15),
            "anl-tacc": downsample(tacc.epoch_observed().tolist(), 15),
        },
        title="Fig 11: simultaneous transfers, observed MB/s (nm-tuner each)",
    )

    joint = run_joint(
        ANL_UC,
        NmTuner(),
        path_a="anl-uc",
        path_b="anl-tacc",
        duration_s=1800.0,
        seed=0,
    )
    joint_total = sum(t.mean_observed(from_time=900.0) for t in joint.values())
    indep_total = result.mean("anl-uc", from_time=900.0) + result.mean(
        "anl-tacc", from_time=900.0
    )

    comparison = render_comparison(
        [
            ("UC claims larger share", "yes",
             f"{100 * result.share_of_uc(from_time=900.0):.0f}% of total"),
            ("combined <= NIC 5000 MB/s", "yes",
             f"{indep_total:.0f}"),
            ("joint tuning total (extension)", "n/a", f"{joint_total:.0f}"),
        ],
        title="Fig 11: paper vs measured",
    )
    report(throughput + "\n\n" + comparison)

    assert result.share_of_uc(from_time=900.0) > 0.5
    assert indep_total <= 5000.0
