"""Figure 8 — ANL→TACC, tuning concurrency AND parallelism under a load
switch (ext.tfr 64→16 at t=1000 s, ext.cmp=16 throughout).

Paper: cs/nm beat default by ~1.3x before the switch and up to 10x after;
throughput follows the concurrency trajectory while parallelism has only
minor impact.
"""

import numpy as np

from repro.experiments.figures import fig8
from repro.experiments.report import downsample, render_comparison, render_series


def test_fig8_tacc_varying_load(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig8(duration_s=1800.0, switch_at_s=1000.0, seed=0),
        rounds=1,
        iterations=1,
    )

    tr = result.traces["nm-tuner"]
    times = downsample(tr.epoch_times().tolist(), 15)
    series = {
        name: downsample(
            result.traces[name].epoch_observed().tolist(), 15
        )
        for name in ("default", "cs-tuner", "nm-tuner")
    }
    throughput = render_series(
        times, series, title="Fig 8: observed throughput (MB/s) over time"
    )
    traj = render_series(
        downsample(tr.epoch_times().tolist(), 15),
        {
            "nm nc": downsample(result.trajectory("nm-tuner", 0).tolist(), 15),
            "nm np": downsample(result.trajectory("nm-tuner", 1).tolist(), 15),
            "cs nc": downsample(result.trajectory("cs-tuner", 0).tolist(), 15),
            "cs np": downsample(result.trajectory("cs-tuner", 1).tolist(), 15),
        },
        title="Fig 8: nc/np trajectories",
    )

    comparison = render_comparison(
        [
            ("phase-1 improvement (nm)", "~1.3x",
             f"{result.improvement('nm-tuner', 0):.1f}x"),
            ("phase-2 improvement (nm)", "up to 10x",
             f"{result.improvement('nm-tuner', 1):.1f}x"),
            ("phase-2 improvement (cs)", "up to 10x",
             f"{result.improvement('cs-tuner', 1):.1f}x"),
        ],
        title="Fig 8: paper vs measured",
    )
    report(throughput + "\n\n" + traj + "\n\n" + comparison)

    # Shapes: tuners beat default in both phases and concurrency moves
    # much more than parallelism.
    for tuner in ("cs-tuner", "nm-tuner"):
        assert result.improvement(tuner, 0) > 1.0
        assert result.improvement(tuner, 1) > 1.5
    nc_range = np.ptp(result.trajectory("nm-tuner", 0))
    np_range = np.ptp(result.trajectory("nm-tuner", 1))
    assert nc_range > np_range
