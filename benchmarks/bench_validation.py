"""Substrate validation — fluid model vs packet-level TCP dynamics.

Not a paper figure: this bench grounds the substrate all figure benches
run on.  The fluid model summarizes each stream as a steady-state rate
cap + max-min fair share; the packet-level simulator evolves actual
congestion windows (slow start, per-CC increase/decrease, buffer
overflow).  The two must agree on the aggregate-throughput-vs-streams
envelope — the curve whose shape Fig. 1 measures.
"""

from repro.experiments.report import render_table
from repro.net.packetsim import PacketPath, aggregate_goodput_mbps
from repro.net.tcp import HTCP, TcpModel

#: ANL→UChicago-like bottleneck for the comparison.
PATH = PacketPath(
    capacity_mbps=5000.0, rtt_s=0.002, loss_rate=1e-4, buffer_packets=5000
)
STREAMS = (1, 2, 4, 8, 16, 32, 64, 128)


def test_fluid_vs_packet_envelope(benchmark, report):
    tcp = TcpModel(cc=HTCP, wmax_bytes=1e15)
    cap = tcp.stream_cap_mbps(PATH.rtt_s, PATH.loss_rate)

    def _measure():
        return {
            n: aggregate_goodput_mbps(
                n, PATH, cc=HTCP, duration_s=120.0, warmup_s=20.0, seed=0
            )
            for n in STREAMS
        }

    packet = benchmark.pedantic(_measure, rounds=1, iterations=1)

    rows = []
    for n in STREAMS:
        fluid = min(n * cap, PATH.capacity_mbps)
        ratio = packet[n] / fluid
        rows.append([n, fluid, packet[n], f"{ratio:.2f}"])
    report(
        render_table(
            ["streams", "fluid MB/s", "packet MB/s", "packet/fluid"],
            rows,
            title=(
                "Validation: aggregate goodput, fluid envelope vs "
                "packet-level simulation (H-TCP, 5000 MB/s, 2 ms RTT)"
            ),
        )
    )

    for n in STREAMS:
        fluid = min(n * cap, PATH.capacity_mbps)
        assert 0.5 * fluid < packet[n] < 2.0 * fluid
    # Both models agree the pipe saturates somewhere below 128 streams.
    assert packet[128] > 0.9 * PATH.capacity_mbps
