"""Observability overhead: bus throughput, span cost, and the 2% gate.

Three measurements:

* raw event-bus fan-out rate (events/sec into a bounded subscriber);
* per-span recording cost (the fixed price of one timed phase);
* end-to-end control-loop overhead for 1000-epoch runs across the
  cd/cs/nm tuners, in three modes — ``off`` (obs=None, the default),
  ``noop`` (fully wired call sites publishing into the NullBus) and
  ``full`` (bus + metrics + spans + one ring subscriber).

The gate this file enforces (and CI runs): the no-op-bus mode must stay
within 2% of the obs=None baseline, best-of-3 — i.e. wiring the
instrumentation through the hot path costs nothing when nobody listens.
"""

import time

from repro.core.registry import make_tuner
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import SCENARIOS
from repro.obs import EpochStart, EventBus, Instrumentation, SpanRecorder
from repro.obs.metrics import MetricsRegistry

EPOCHS = 1000
DURATION_S = EPOCHS * 30.0
TUNERS = ("cd", "cs", "nm")
ROUNDS = 3
GATE = 0.02  # no-op bus must cost < 2% end to end


def _one_run(tuner: str, mode: str) -> tuple[float, Instrumentation | None]:
    if mode == "off":
        obs = None
    elif mode == "noop":
        obs = Instrumentation.noop()
    else:
        obs = Instrumentation.on()
        obs.bus.subscribe(maxlen=4096)
    t0 = time.perf_counter()
    trace = run_single(
        SCENARIOS["anl-uc"], make_tuner(tuner, 0),
        duration_s=DURATION_S, seed=0, obs=obs,
    )
    dt = time.perf_counter() - t0
    assert len(trace.epochs) == EPOCHS
    return dt, obs


def _best_of(tuner: str, mode: str) -> tuple[float, Instrumentation | None]:
    best, kept = min(
        (_one_run(tuner, mode) for _ in range(ROUNDS)),
        key=lambda pair: pair[0],
    )
    return best, kept


def test_obs_event_bus_throughput(benchmark, report):
    n = 200_000
    bus = EventBus()
    bus.subscribe(maxlen=1024)
    events = [
        EpochStart(time=float(i), session="main", index=i, params=(2, 8))
        for i in range(n)
    ]

    def _emit_all():
        for ev in events:
            bus.emit(ev)
        return n

    benchmark.pedantic(_emit_all, rounds=3, iterations=1)
    rate = n / benchmark.stats.stats.min
    report(
        "event bus fan-out (1 bounded subscriber)\n"
        f"events/sec (best of 3): {rate:,.0f}\n"
        f"per-event cost: {1e9 / rate:,.0f} ns"
    )
    assert rate > 100_000  # anything slower would show up per epoch


def test_obs_span_cost(benchmark, report):
    n = 100_000
    spans = SpanRecorder(MetricsRegistry())

    def _record_all():
        for _ in range(n):
            with spans.span("epoch"):
                pass
        return n

    benchmark.pedantic(_record_all, rounds=3, iterations=1)
    per_span_ns = 1e9 * benchmark.stats.stats.min / n
    report(
        "span recording cost (context-manager form, empty body)\n"
        f"per-span: {per_span_ns:,.0f} ns\n"
        f"per 1000-epoch run at 3 spans/epoch: "
        f"{3 * EPOCHS * per_span_ns / 1e6:.1f} ms"
    )
    assert per_span_ns < 100_000  # 0.1 ms/span would be pathological


def test_obs_overhead_gate(benchmark, report):
    def _sweep():
        results = {}
        for tuner in TUNERS:
            for mode in ("off", "noop", "full"):
                results[tuner, mode] = _best_of(tuner, mode)
        return results

    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = []
    for tuner in TUNERS:
        off, _ = results[tuner, "off"]
        noop, _ = results[tuner, "noop"]
        full, inst = results[tuner, "full"]
        rows.append([
            tuner, f"{off * 1e3:.0f}", f"{noop * 1e3:.0f}",
            f"{100 * (noop / off - 1):+.1f}%",
            f"{full * 1e3:.0f}", f"{100 * (full / off - 1):+.1f}%",
            f"{inst.bus.total_emitted}",
        ])
    off_total = sum(results[t, "off"][0] for t in TUNERS)
    noop_total = sum(results[t, "noop"][0] for t in TUNERS)
    overhead = noop_total / off_total - 1

    full_inst = results["nm", "full"][1]
    span_hist = full_inst.metrics.collect()["repro_span_seconds"]
    transfer = next(
        h for k, h in span_hist.items() if dict(k)["phase"] == "epoch/transfer"
    )
    report(
        render_table(
            ["tuner", "off ms", "noop ms", "noop Δ", "full ms", "full Δ",
             "events"],
            rows,
            title=f"observability overhead, {EPOCHS}-epoch runs "
                  f"(best of {ROUNDS})",
        )
        + f"\n\naggregate no-op-bus overhead: {100 * overhead:+.2f}% "
        f"(gate: < {100 * GATE:.0f}%)\n"
        f"epoch/transfer span (nm, full): mean "
        f"{transfer.mean * 1e6:.1f} us over {transfer.count} epochs"
    )
    assert overhead < GATE, (
        f"no-op bus costs {100 * overhead:.2f}% end to end "
        f"(gate {100 * GATE:.0f}%)"
    )
