"""Figure 1 — impact of parallel TCP streams (concurrency) on throughput.

Paper setup: ANL→UChicago, np=1, concurrency swept in powers of two, five
repetitions of 10-minute transfers, (a) without external load and (b) with
ext.tfr = ext.cmp = 16.  Reported shape: throughput rises monotonically to
a *critical point* (64 streams without load) and falls beyond it; the
critical point moves right and the peak drops under load.
"""

from repro.endpoint.load import ExternalLoad
from repro.experiments.figures import fig1
from repro.experiments.report import render_comparison, render_table

NC_VALUES = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
LOADS = {
    "no-load": ExternalLoad(),
    "high-load": ExternalLoad(ext_cmp=16, ext_tfr=16),
}


def test_fig1_concurrency_boxplots(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig1(
            nc_values=NC_VALUES, loads=LOADS, reps=5, duration_s=600.0,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    for label in LOADS:
        for nc in NC_VALUES:
            s = result.stats[label][nc]
            rows.append(
                [label, nc, s.minimum, s.q1, s.median, s.q3, s.maximum]
            )
    table = render_table(
        ["load", "nc", "min", "q1", "median", "q3", "max"],
        rows,
        title="Fig 1: throughput (MB/s) vs concurrency, np=1, 5 reps",
    )

    crit_free = result.critical_point("no-load")
    crit_load = result.critical_point("high-load")
    peak_free = result.stats["no-load"][crit_free].median
    peak_load = result.stats["high-load"][crit_load].median
    comparison = render_comparison(
        [
            ("critical nc, no load", 64, crit_free),
            ("critical nc, high load", "> 64", crit_load),
            ("peak drops under load", "yes", peak_load < peak_free),
        ],
        title="Fig 1: paper vs measured",
    )
    report(table + "\n\n" + comparison)

    assert crit_free == 64
    assert crit_load >= crit_free
    assert peak_load < peak_free
