"""Ablations over the tuners' own knobs: tolerance ε, control epoch
length e, and compass step size λ.

DESIGN.md calls out three design choices the paper fixes globally
(ε=5%, e=30 s, λ=8) with qualitative guidance only ("λ should be chosen
neither too large nor too small").  These sweeps regenerate the trade-off
curves behind that guidance on the calibrated ANL→UChicago scenario under
ext.cmp=16.
"""

from repro.analysis.stats import steady_state_mean
from repro.core.cs_tuner import CsTuner
from repro.core.nm_tuner import NmTuner
from repro.endpoint.load import ExternalLoad
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC

LOAD = ExternalLoad(ext_cmp=16)


def test_ablation_tolerance_epsilon(benchmark, report):
    """ε too small -> noise retriggers searches; too large -> deaf to real
    load changes.  Sweep ε for nm-tuner."""

    def _sweep():
        out = {}
        for eps in (1.0, 2.5, 5.0, 10.0, 20.0):
            t = run_single(ANL_UC, NmTuner(eps_pct=eps), load=LOAD,
                           duration_s=1800.0, seed=1)
            out[eps] = steady_state_mean(t)
        return out

    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["epsilon %", "steady observed MB/s"],
        [[k, v] for k, v in result.items()],
        title="Ablation: tolerance epsilon (nm-tuner, ext.cmp=16)",
    )
    report(table)
    assert all(v > 0 for v in result.values())


def test_ablation_epoch_length(benchmark, report):
    """Short epochs measure noisily and restart often; long epochs adapt
    slowly.  Sweep e for nm-tuner."""

    def _sweep():
        out = {}
        for epoch_s in (10.0, 30.0, 60.0, 120.0):
            t = run_single(ANL_UC, NmTuner(), load=LOAD, duration_s=1800.0,
                           epoch_s=epoch_s, seed=1)
            out[epoch_s] = steady_state_mean(t)
        return out

    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["epoch s", "steady observed MB/s"],
        [[k, v] for k, v in result.items()],
        title="Ablation: control epoch length (nm-tuner, ext.cmp=16)",
    )
    report(table)
    # Very short epochs pay proportionally more restart dead time than the
    # paper's 30 s setting.
    assert result[10.0] < result[30.0]


def test_ablation_compass_lambda(benchmark, report):
    """Paper: "λ should be chosen neither too large nor too small"."""

    def _sweep():
        out = {}
        for lam in (1.0, 2.0, 4.0, 8.0, 16.0, 32.0):
            t = run_single(ANL_UC, CsTuner(lam0=lam, seed=1), load=LOAD,
                           duration_s=1800.0, seed=1)
            out[lam] = steady_state_mean(t)
        return out

    result = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = render_table(
        ["lambda", "steady observed MB/s"],
        [[k, v] for k, v in result.items()],
        title="Ablation: compass step size lambda (cs-tuner, ext.cmp=16)",
    )
    report(table)
    assert all(v > 0 for v in result.values())
