"""Model-based vs model-free stream selection (paper §I argument).

The paper's central claim for direct search is that analytical and
empirical models "fail to capture all of the complex interactions between
input parameters and dynamic external load".  This bench stages exactly
that failure: the Hacker-style analytical model (fed the *true* path
characteristics) and the Yildirim-style three-point curve fit pick stream
counts, and the external compute load changes mid-transfer.  The models,
blind to endpoint CPU state, keep their settings; nm-tuner adapts.
"""

from repro.core.model_based import HackerModelTuner, NewtonModelTuner
from repro.core.nm_tuner import NmTuner
from repro.core.base import StaticTuner
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC, PATH_ANL_UC

#: Quiet first half, then 32 dgemm copies land on the source.
SCHEDULE = LoadSchedule(
    [(0.0, ExternalLoad()), (900.0, ExternalLoad(ext_cmp=32))]
)


def _tuners():
    # The analytical model gets the true path parameters — the most
    # charitable possible setting for it.
    path = PATH_ANL_UC
    hacker = HackerModelTuner(
        rtt_s=path.rtt_s,
        loss_rate=path.effective_loss(16),
        capacity_mbps=path.bottleneck_capacity_mbps,
        np_=8,
    )
    return {
        "default": StaticTuner(),
        "hacker-model": hacker,
        "newton-model": NewtonModelTuner(sample_points=(2, 8, 24)),
        "nm-tuner": NmTuner(),
    }


def test_model_based_vs_direct_search(benchmark, report):
    def _race():
        return {
            name: run_single(ANL_UC, tuner, load=SCHEDULE,
                             duration_s=1800.0, seed=0)
            for name, tuner in _tuners().items()
        }

    traces = benchmark.pedantic(_race, rounds=1, iterations=1)

    rows = []
    for name, trace in traces.items():
        quiet = trace.mean_observed(from_time=300.0, to_time=900.0)
        busy = trace.mean_observed(from_time=1200.0)
        rows.append([name, quiet, busy])
    report(
        render_table(
            ["method", "quiet phase MB/s", "cmp32 phase MB/s"],
            rows,
            title=(
                "Model-based vs model-free under a mid-transfer load "
                "change (ANL->UChicago)"
            ),
        )
    )

    def busy(name):
        return traces[name].mean_observed(from_time=1200.0)

    def quiet(name):
        return traces[name].mean_observed(from_time=300.0, to_time=900.0)

    # In the quiet phase the models are competitive (their regime).
    assert quiet("hacker-model") > quiet("default")
    assert quiet("newton-model") > 0.5 * quiet("nm-tuner")
    # Once the load lands, the adaptive method pulls ahead of the static
    # model prediction.
    assert busy("nm-tuner") > busy("hacker-model")
    assert busy("nm-tuner") > busy("default")
