"""Batch engine throughput: B=64 seed replicates, batched vs serial.

The workload is the batch engine's home turf — one scenario/tuner
(ANL→UChicago, cd-tuner), 64 seed replicates at 900 s, cache off — so
every lane shares the allocation-memo group and the homogeneous span
shortcut applies.  Serial means 64 ``run_single`` calls on the default
fast-path scalar engine; batched means one ``run_batch`` call at
``batch=64``.  Traces must be bit-identical lane for lane; the
committed target (and the CI ``--floor``) is **>= 9x** (raised from 8x
when population dispatch vectorized the window-end path), the pytest
regression gate >= 7x (the same gate-below-target discipline as
``bench_campaign_scaling`` — the box is noisy single-core).

Measurement is interleaved best-of-N: each round collects garbage,
times serial, then batched back to back, and the best round of each
side is compared — so a load spike or GC pause hurts both sides rather
than skewing the ratio.

Script mode is the CI ``batch-equivalence`` perf gate::

    PYTHONPATH=src python benchmarks/bench_batch.py --quick --floor 9

exits nonzero if the speedup falls below the floor or any lane
diverges from its scalar reference.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.core.registry import make_tuner
from repro.experiments.batch import SingleRunSpec, run_batch
from repro.experiments.parallel import replicate_seeds
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import SCENARIOS

SEED = 21
TUNER = "cd"
SCENARIO = "anl-uc"
B = 64
DURATION_S = 900.0
TARGET_SPEEDUP = 9.0  # committed target; CI passes --floor 9
GATE_SPEEDUP = 7.0  # pytest regression gate (noise margin under target)


def _specs(duration_s: float):
    scenario = SCENARIOS[SCENARIO]
    return [
        SingleRunSpec(scenario, make_tuner(TUNER, seed),
                      duration_s=duration_s, seed=seed)
        for seed in replicate_seeds(SEED, B)
    ]


def _run_serial(duration_s: float):
    scenario = SCENARIOS[SCENARIO]
    return [
        run_single(scenario, make_tuner(TUNER, seed),
                   duration_s=duration_s, seed=seed, cache=False)
        for seed in replicate_seeds(SEED, B)
    ]


def batch_measurement(duration_s: float, rounds: int):
    """Interleaved best-of-``rounds``; returns
    (serial_s, batch_s, speedup, identical)."""
    best_serial = best_batch = float("inf")
    serial_traces = batch_traces = None
    for _ in range(rounds):
        gc.collect()
        t0 = time.perf_counter()
        serial_traces = _run_serial(duration_s)
        dt = time.perf_counter() - t0
        best_serial = min(best_serial, dt)

        gc.collect()
        t0 = time.perf_counter()
        batch_traces = run_batch(_specs(duration_s), batch=B, cache=False)
        dt = time.perf_counter() - t0
        best_batch = min(best_batch, dt)
    identical = all(
        b.epochs == s.epochs and b.steps == s.steps
        for s, b in zip(serial_traces, batch_traces)
    )
    return best_serial, best_batch, best_serial / best_batch, identical


def _block(serial_s, batch_s, speedup, identical, duration_s, rounds):
    return render_table(
        ["path", "wall s", "runs/s"],
        [
            ["serial scalar", f"{serial_s:.3f}", f"{B / serial_s:.1f}"],
            [f"batch B={B}", f"{batch_s:.3f}", f"{B / batch_s:.1f}"],
        ],
        title=(f"batch engine vs serial: {B} x {TUNER}-tuner "
               f"{duration_s:.0f} s replicates on {SCENARIO}, "
               f"best of {rounds} interleaved"),
    ) + (
        f"\n\nspeedup {speedup:.2f}x (target >= {TARGET_SPEEDUP:.0f}x); "
        f"all {B} traces bit-identical: {'yes' if identical else 'NO'}"
    )


# -- pytest entry (committed results) ----------------------------------------


def test_bench_batch_speedup(report):
    serial_s, batch_s, speedup, identical = batch_measurement(
        DURATION_S, rounds=5)
    report(_block(serial_s, batch_s, speedup, identical, DURATION_S, 5))
    assert identical, "a batched lane diverged from its scalar reference"
    assert speedup >= GATE_SPEEDUP


# -- CI batch-equivalence perf gate ------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds for the CI gate")
    parser.add_argument("--floor", type=float, default=TARGET_SPEEDUP,
                        help="fail below this speedup")
    args = parser.parse_args(argv)
    rounds = 3 if args.quick else 5

    serial_s, batch_s, speedup, identical = batch_measurement(
        DURATION_S, rounds)
    print(_block(serial_s, batch_s, speedup, identical, DURATION_S,
                 rounds))

    failed = False
    if not identical:
        print("\nFAIL: a batched lane diverged from its scalar reference")
        failed = True
    if speedup < args.floor:
        print(f"\nFAIL: batch speedup {speedup:.2f}x < "
              f"{args.floor:.1f}x floor")
        failed = True
    if not failed:
        print(f"\nOK: {speedup:.2f}x at B={B}, traces bit-identical")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
