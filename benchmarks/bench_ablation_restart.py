"""Ablation — restart overhead and warm restart (paper future work 2).

The paper identifies per-epoch tool restarts as the tuners' main cost
("In an ideal scenario, globus-url-copy will ... adapt the value of nc
without requiring restart") and lists reducing it as future work.  This
ablation quantifies the headroom: cold restarts (the paper's behaviour)
vs warm restarts (processes reused when only np changes / an in-place
nc adaptation costing 20% of a cold start) vs free restarts (the ideal).
"""

import math

from repro.analysis.stats import steady_state_mean
from repro.core.nm_tuner import NmTuner
from repro.endpoint.load import ExternalLoad, LoadSchedule
from repro.experiments.report import render_comparison, render_table
from repro.experiments.runner import make_session
from repro.experiments.scenarios import ANL_UC
from repro.gridftp.client import ClientModel, RestartModel
from repro.sim.engine import Engine, EngineConfig


def _run(restart_model, *, warm_session=False, seed=0):
    session = make_session(
        "main", "anl-uc", NmTuner(), duration_s=1800.0, fixed_np=8,
    )
    session.warm_restart = warm_session
    engine = Engine(
        topology=ANL_UC.build_topology(),
        host=ANL_UC.host,
        sessions=[session],
        schedule=LoadSchedule.constant(ExternalLoad(ext_cmp=16)),
        client=ClientModel(restart=restart_model),
        config=EngineConfig(seed=seed),
    )
    return engine.run()["main"]


def test_ablation_restart_overhead(benchmark, report):
    def _all():
        cold = _run(RestartModel())
        warm = _run(RestartModel(warm_np_factor=0.2), warm_session=True)
        free = _run(RestartModel(base_s=0.0, per_proc_s=0.0,
                                 jitter_sigma=0.0))
        return cold, warm, free

    cold, warm, free = benchmark.pedantic(_all, rounds=1, iterations=1)

    rows = [
        ["cold (paper)", steady_state_mean(cold),
         steady_state_mean(cold, best_case=True)],
        ["warm (future work 2)", steady_state_mean(warm),
         steady_state_mean(warm, best_case=True)],
        ["free (ideal)", steady_state_mean(free),
         steady_state_mean(free, best_case=True)],
    ]
    table = render_table(
        ["restart mode", "observed", "best-case"],
        rows,
        title="Ablation: restart cost under ext.cmp=16 (nm-tuner, MB/s)",
    )
    gain = steady_state_mean(free) / steady_state_mean(cold)
    comparison = render_comparison(
        [("ideal-restart headroom", "significant", f"{gain:.2f}x")],
        title="Restart ablation: paper vs measured",
    )
    report(table + "\n\n" + comparison)

    assert steady_state_mean(free) > steady_state_mean(cold)
    # Observed converges to best-case when restarts are free.
    assert math.isclose(
        steady_state_mean(free),
        steady_state_mean(free, best_case=True),
        rel_tol=0.05,
    )
