"""Microbenchmarks of the hot substrate paths.

Not a paper figure: these time the inner loops the figure benches lean on
(fair-share allocation, CPU scheduling, one engine step) so performance
regressions in the substrate are caught before they slow every figure.
"""

import math

from repro.core.base import StaticTuner
from repro.endpoint.cpu import CpuTask, fair_shares
from repro.experiments.runner import make_session
from repro.experiments.scenarios import ANL_UC
from repro.net.fairshare import max_min_fair_allocation
from repro.net.flows import FlowGroup
from repro.net.link import Link, Path
from repro.sim.engine import Engine, EngineConfig


def test_bench_max_min_allocation(benchmark):
    nic = Link("nic", 5000.0)
    wans = [Link(f"wan{i}", 2500.0) for i in range(4)]
    groups = []
    for i in range(16):
        path = Path(f"p{i}", (nic, wans[i % 4]), rtt_ms=10.0)
        groups.append(
            FlowGroup(f"g{i}", path, n_streams=8 * (i + 1),
                      group_cap_mbps=900.0 * (1 + i % 3),
                      stream_cap_mbps=50.0)
        )
    alloc = benchmark(max_min_fair_allocation, groups)
    assert sum(alloc.values()) <= 5000.0 + 1e-6


def test_bench_cpu_fair_shares(benchmark):
    tasks = [
        CpuTask("xfer", 64),
        CpuTask("dgemm", 512, weight=0.35),
        CpuTask("ext", 4),
    ]
    shares = benchmark(fair_shares, tasks, 8)
    assert sum(shares.values()) <= 8 + 1e-6


def test_bench_engine_wall_clock(benchmark):
    """1800 simulated seconds of a default transfer; the figure benches
    run dozens of these."""

    def _run():
        session = make_session(
            "main", "anl-uc", StaticTuner(), duration_s=1800.0, fixed_np=8
        )
        engine = Engine(
            topology=ANL_UC.build_topology(),
            host=ANL_UC.host,
            sessions=[session],
            config=EngineConfig(seed=0),
        )
        return engine.run()["main"]

    trace = benchmark(_run)
    assert math.isfinite(trace.mean_observed())
