"""Microbenchmarks of the hot substrate paths.

Not a paper figure: these time the inner loops the figure benches lean on
(fair-share allocation, CPU scheduling, one engine step) so performance
regressions in the substrate are caught before they slow every figure.
``max_min_fair_allocation`` and ``fair_shares`` are also the engine fast
path's *cache-miss cost* — with allocation-phase caching they run only
at change points (epoch boundaries, load transitions, fault events)
instead of every step — so their absolute cost is committed to
``benchmarks/results/`` alongside the substrate numbers.
"""

import math

from repro.core.base import StaticTuner
from repro.endpoint.cpu import CpuTask, fair_shares
from repro.experiments.report import render_table
from repro.experiments.runner import make_session
from repro.experiments.scenarios import ANL_UC
from repro.net.fairshare import max_min_fair_allocation
from repro.net.flows import FlowGroup
from repro.net.link import Link, Path
from repro.sim.engine import Engine, EngineConfig


def _timing_block(benchmark, title: str, note: str) -> str:
    s = benchmark.stats.stats
    return render_table(
        ["stat", "value"],
        [
            ["mean", f"{s.mean * 1e6:.2f} us"],
            ["min", f"{s.min * 1e6:.2f} us"],
            ["rounds", s.rounds],
        ],
        title=title,
    ) + f"\n\n{note}"


def test_bench_max_min_allocation(benchmark, report):
    nic = Link("nic", 5000.0)
    wans = [Link(f"wan{i}", 2500.0) for i in range(4)]
    groups = []
    for i in range(16):
        path = Path(f"p{i}", (nic, wans[i % 4]), rtt_ms=10.0)
        groups.append(
            FlowGroup(f"g{i}", path, n_streams=8 * (i + 1),
                      group_cap_mbps=900.0 * (1 + i % 3),
                      stream_cap_mbps=50.0)
        )
    alloc = benchmark(max_min_fair_allocation, groups)
    assert sum(alloc.values()) <= 5000.0 + 1e-6
    report(_timing_block(
        benchmark,
        "max_min_fair_allocation: 16 groups over nic + 4 wans",
        "Fast-path cache-miss cost: paid once per change point "
        "(epoch/load/fault/start-stop), not once per 1 s step.",
    ))


def test_bench_cpu_fair_shares(benchmark, report):
    tasks = [
        CpuTask("xfer", 64),
        CpuTask("dgemm", 512, weight=0.35),
        CpuTask("ext", 4),
    ]
    shares = benchmark(fair_shares, tasks, 8)
    assert sum(shares.values()) <= 8 + 1e-6
    report(_timing_block(
        benchmark,
        "fair_shares: 3 task classes, 8 cores",
        "Fast-path cache-miss cost: paid once per change point "
        "(epoch/load/fault/start-stop), not once per 1 s step.",
    ))


def test_bench_engine_wall_clock(benchmark):
    """1800 simulated seconds of a default transfer; the figure benches
    run dozens of these."""

    def _run():
        session = make_session(
            "main", "anl-uc", StaticTuner(), duration_s=1800.0, fixed_np=8
        )
        engine = Engine(
            topology=ANL_UC.build_topology(),
            host=ANL_UC.host,
            sessions=[session],
            config=EngineConfig(seed=0),
        )
        return engine.run()["main"]

    trace = benchmark(_run)
    assert math.isfinite(trace.mean_observed())
