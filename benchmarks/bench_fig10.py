"""Figure 10 — comparison with existing heuristics (ANL→TACC, nc+np under
the §IV-B varying load).

Paper: nm-tuner and heur2 (Yildirim's exponential heuristic) reach the
maximum achievable throughput within a few control epochs and clearly beat
heur1 (Balman's additive heuristic), whose +1-per-epoch ramp needs many
more epochs; heur2's weakness is starting points above the critical value
(no decrement mechanism).
"""

from repro.analysis.stats import steady_state_mean
from repro.core.heuristics import Heur2Tuner
from repro.core.nm_tuner import NmTuner
from repro.experiments.figures import fig10
from repro.experiments.report import downsample, render_comparison, render_series
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_TACC


def test_fig10_heuristic_comparison(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig10(duration_s=1800.0, switch_at_s=1000.0, seed=0),
        rounds=1,
        iterations=1,
    )

    tr = result.traces["nm-tuner"]
    times = downsample(tr.epoch_times().tolist(), 15)
    series = {
        name: downsample(result.traces[name].epoch_observed().tolist(), 15)
        for name in ("default", "nm-tuner", "heur1", "heur2")
    }
    throughput = render_series(
        times, series, title="Fig 10: observed throughput (MB/s) over time"
    )

    # The high-start pathology the paper calls out for heur2.
    high_start = (100, 16)
    h2_high = run_single(ANL_TACC, Heur2Tuner(), x0=high_start,
                         duration_s=900.0, tune_np=True, seed=0)
    nm_high = run_single(ANL_TACC, NmTuner(), x0=high_start,
                         duration_s=900.0, tune_np=True, seed=0)

    ramp_window = (120.0, 600.0)
    early = {
        name: result.traces[name].mean_observed(
            from_time=ramp_window[0], to_time=ramp_window[1]
        )
        for name in ("nm-tuner", "heur1", "heur2")
    }
    comparison = render_comparison(
        [
            ("early ramp: nm vs heur1", "nm >> heur1",
             f"{early['nm-tuner']:.0f} vs {early['heur1']:.0f}"),
            ("early ramp: heur2 vs heur1", "heur2 >> heur1",
             f"{early['heur2']:.0f} vs {early['heur1']:.0f}"),
            ("high start: nm recovers, heur2 stuck", "yes",
             f"nm {steady_state_mean(nm_high):.0f} vs "
             f"heur2 {steady_state_mean(h2_high):.0f}"),
        ],
        title="Fig 10: paper vs measured",
    )
    report(throughput + "\n\n" + comparison)

    assert early["heur2"] > early["heur1"]
    assert early["nm-tuner"] > early["heur1"]
    assert steady_state_mean(nm_high) > steady_state_mean(h2_high)
