"""All-methods comparison with oracle regret (extension bench).

Beyond the paper's four methods, the library implements Hooke-Jeeves
pattern search, SPSA and golden-section search.  This bench races all of
them against the offline-oracle static setting on the paper's hardest
condition (ANL→UChicago, ext.cmp=16) and reports steady throughput,
regret vs the oracle, and time-to-80%-of-oracle.

Everything routes through the content-addressed run cache
(:mod:`repro.cache`), so the oracle is computed once: the grid sweep
populates the store and the unimodal (bisection) sweep re-reads the
candidates it probes as hits.  Both search modes' evaluation counts are
recorded in the committed results — the unimodal oracle needs a
fraction of the grid's transfers for the same argmax.
"""

from repro.analysis.convergence import (
    epochs_to_fraction_of_oracle,
    regret_fraction,
)
from repro.analysis.stats import steady_state_mean
from repro.cache import RunCache
from repro.core.aimd_tuner import AimdTuner
from repro.core.bandit import BanditTuner
from repro.core.base import StaticTuner, Tuner
from repro.core.cd_tuner import CdTuner
from repro.core.cs_tuner import CsTuner
from repro.core.gss_tuner import GssTuner
from repro.core.heuristics import Heur1Tuner, Heur2Tuner
from repro.core.hj_tuner import HjTuner
from repro.core.nm_tuner import NmTuner
from repro.core.spsa_tuner import SpsaTuner
from repro.endpoint.load import ExternalLoad
from repro.experiments.oracle import oracle_static_nc
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC

LOAD = ExternalLoad(ext_cmp=16)

TUNERS: dict[str, Tuner] = {
    "default": StaticTuner(),
    "cd-tuner": CdTuner(),
    "cs-tuner": CsTuner(seed=0),
    "nm-tuner": NmTuner(),
    "hj-tuner": HjTuner(),
    "spsa-tuner": SpsaTuner(seed=0),
    "gss-tuner": GssTuner(),
    "bandit-tuner": BanditTuner(seed=0),
    "heur1": Heur1Tuner(),
    "heur2": Heur2Tuner(),
    "aimd-tuner": AimdTuner(),
}


def test_tuner_comparison_with_oracle_regret(benchmark, report, tmp_path):
    store = RunCache(tmp_path / "bench-cache")

    def _race():
        oracle = oracle_static_nc(ANL_UC, load=LOAD, duration_s=180.0,
                                  cache=store)
        uni = oracle_static_nc(ANL_UC, load=LOAD, duration_s=180.0,
                               search="unimodal", cache=store)
        traces = {
            name: run_single(ANL_UC, tuner, load=LOAD, duration_s=1800.0,
                             seed=0, cache=store)
            for name, tuner in TUNERS.items()
        }
        return oracle, uni, traces

    oracle, uni, traces = benchmark.pedantic(_race, rounds=1, iterations=1)
    # The bisection oracle must agree with the grid while re-reading its
    # candidates from the cache (every one of its evaluations is a hit).
    assert uni.params == oracle.params
    assert store.hits >= uni.evaluations

    # The oracle never restarts; charge the tuners' steady restart share
    # so the regret target is what an adaptive method could actually get.
    rows = []
    for name, trace in traces.items():
        steady = steady_state_mean(trace)
        cross = epochs_to_fraction_of_oracle(
            trace, oracle.throughput_mbps, fraction=0.5
        )
        rows.append(
            [
                name,
                steady,
                f"{100 * regret_fraction(trace, oracle.throughput_mbps):.0f}%",
                "never" if cross is None else f"{cross * 30} s",
            ]
        )
    rows.sort(key=lambda r: -float(r[1]))
    report(
        render_table(
            ["method", "steady MB/s", "regret vs oracle",
             "t to 50% of oracle"],
            rows,
            title=(
                f"All methods under ext.cmp=16; oracle static nc="
                f"{oracle.params[0]} at {oracle.throughput_mbps:.0f} MB/s "
                f"({oracle.evaluations} grid / {uni.evaluations} unimodal "
                "offline evaluations, cache-served)"
            ),
        )
    )

    by_name = {r[0]: float(r[1]) for r in rows}
    # Every direct-search method must beat the static default here.
    # (heur1's +1-per-epoch crawl can lose to the default once the
    # per-epoch restart tax is charged — consistent with the paper's
    # finding that it "requires a larger number of control epochs".)
    for name in ("cd-tuner", "cs-tuner", "nm-tuner", "hj-tuner",
                 "spsa-tuner", "gss-tuner", "bandit-tuner"):
        assert by_name[name] > by_name["default"], name
    # The paper's robust methods and the pattern-search cousin lead.
    for strong in ("cs-tuner", "nm-tuner", "hj-tuner"):
        assert by_name[strong] > by_name["heur1"]
