"""Figure 7 — best-case throughput (restart overhead removed).

Paper: aggregating what the nc copies report (i.e. excluding the per-epoch
restart dead time) raises the tuners' steady-state throughput to
~4000 MB/s without load; the observed-vs-best-case gap is ~17% without
load, ~33% at ext.cmp=16, ~50% at ext.cmp=64, and stays ~15% under pure
network load.
"""

from repro.experiments.figures import FIG5_LOADS, fig7
from repro.experiments.report import render_comparison, render_table

PAPER_OVERHEAD_PCT = {"none": 17.0, "cmp16": 33.0, "cmp64": 50.0,
                      "tfr16": 15.0, "tfr64": 15.0}


def test_fig7_best_case_throughput(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig7(duration_s=1800.0, seed=0), rounds=1, iterations=1
    )

    rows = []
    for load in FIG5_LOADS:
        for tuner in ("cd-tuner", "cs-tuner", "nm-tuner"):
            rows.append(
                [
                    load,
                    tuner,
                    result.steady_observed(load, tuner),
                    result.steady_best_case(load, tuner),
                    result.overhead_pct(load, tuner),
                ]
            )
    table = render_table(
        ["load", "tuner", "observed", "best-case", "overhead %"],
        rows,
        title="Fig 7: best-case vs observed (MB/s), ANL->UChicago",
    )

    comp = []
    for load in ("none", "cmp16", "cmp64", "tfr16"):
        comp.append(
            (
                f"{load}: overhead %",
                PAPER_OVERHEAD_PCT[load],
                result.overhead_pct(load, "nm-tuner"),
            )
        )
    comp.append(
        ("none: best-case MB/s", 4000,
         result.steady_best_case("none", "nm-tuner"))
    )
    report(table + "\n\n" + render_comparison(
        comp, title="Fig 7: paper vs measured"))

    # Shape: best-case always above observed for restarting tuners, and
    # the overhead grows with compute load.
    for load in FIG5_LOADS:
        for tuner in ("cd-tuner", "cs-tuner", "nm-tuner"):
            assert result.steady_best_case(load, tuner) >= (
                result.steady_observed(load, tuner)
            )
    assert (
        result.overhead_pct("cmp64", "nm-tuner")
        > result.overhead_pct("none", "nm-tuner")
    )
