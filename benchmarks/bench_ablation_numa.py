"""Ablation — NUMA process pinning (the paper's taskset detail).

The paper pins its `globus-url-copy` copies "on alternate sockets using
the taskset system call".  With the NUMA substrate wired into the engine,
this ablation measures what that buys: the same nm-tuned transfer on the
dual-socket Nehalem source under alternate pinning, NIC-socket-first
packing, unpinned (OS default churn), and a NUMA-blind host model.
"""

from dataclasses import replace

from repro.analysis.stats import steady_state_mean
from repro.core.nm_tuner import NmTuner
from repro.endpoint.host import NEHALEM
from repro.endpoint.load import ExternalLoad
from repro.endpoint.numa import NEHALEM_LAYOUT, PinningPolicy
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC

VARIANTS = {
    "numa-blind": replace(NEHALEM),
    "alternate (paper)": replace(
        NEHALEM, sockets=NEHALEM_LAYOUT, pinning=PinningPolicy.ALTERNATE
    ),
    "nic-first": replace(
        NEHALEM, sockets=NEHALEM_LAYOUT, pinning=PinningPolicy.NIC_FIRST
    ),
    "unpinned": replace(
        NEHALEM, sockets=NEHALEM_LAYOUT, pinning=PinningPolicy.UNPINNED
    ),
}


def test_ablation_numa_pinning(benchmark, report):
    def _race():
        out = {}
        for name, host in VARIANTS.items():
            scenario = ANL_UC.with_host(host)
            trace = run_single(
                scenario, NmTuner(), load=ExternalLoad(ext_tfr=16),
                duration_s=1800.0, seed=2,
            )
            out[name] = steady_state_mean(trace)
        return out

    results = benchmark.pedantic(_race, rounds=1, iterations=1)

    rows = [[name, mbps] for name, mbps in results.items()]
    report(
        render_table(
            ["placement", "steady MB/s"],
            rows,
            title=(
                "Ablation: process placement on the dual-socket source "
                "(nm-tuner, ext.tfr=16)"
            ),
        )
    )

    # Modeling NUMA at all costs something vs the blind model, and the
    # unpinned OS default is the worst of the pinned placements.
    assert results["numa-blind"] >= results["alternate (paper)"] * 0.95
    assert results["unpinned"] <= max(
        results["alternate (paper)"], results["nic-first"]
    ) + 1e-9
