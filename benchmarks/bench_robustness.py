"""Robustness under random workloads and fault campaigns (extension bench).

The paper evaluates one hand-picked load switch (§IV-B).  Production
endpoints see random job arrivals and traffic bursts; this bench races
default vs nm-tuner across a population of random workloads from
:mod:`repro.endpoint.workload` (Poisson compute jobs, bursty traffic) and
reports paired win rates and mean improvements with confidence intervals.

The fault-campaign bench injects seeded bursty fault schedules
(:mod:`repro.faults`) at increasing fault rates and compares the tuned
transfer's throughput with retry/backoff alone against retry/backoff plus
the circuit breaker.
"""

import numpy as np

from repro.analysis.stats import steady_state_mean
from repro.core.base import StaticTuner
from repro.core.nm_tuner import NmTuner
from repro.endpoint.workload import BurstyTraffic, PoissonJobMix
from repro.experiments.replicate import compare, win_rate
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC
from repro.faults import CircuitBreaker, FaultSchedule, RetryPolicy

SEEDS = list(range(8))
DURATION_S = 1800.0

WORKLOADS = {
    "poisson-jobs": PoissonJobMix(arrival_per_hour=40.0,
                                  mean_duration_s=600.0, max_jobs=32),
    "bursty-traffic": BurstyTraffic(burst_streams=64, mean_quiet_s=300.0,
                                    mean_burst_s=200.0),
}


def _metric(workload, tuner_factory):
    def run(seed: int) -> float:
        schedule = workload.schedule(
            DURATION_S, np.random.default_rng(seed + 10_000)
        )
        trace = run_single(
            ANL_UC, tuner_factory(), load=schedule,
            duration_s=DURATION_S, seed=seed,
        )
        return steady_state_mean(trace, tail_fraction=0.8)

    return run


def test_robustness_random_workloads(benchmark, report):
    def _race():
        out = {}
        for name, workload in WORKLOADS.items():
            out[name] = compare(
                {
                    "default": _metric(workload, StaticTuner),
                    "nm-tuner": _metric(workload, NmTuner),
                },
                SEEDS,
            )
        return out

    results = benchmark.pedantic(_race, rounds=1, iterations=1)

    rows = []
    for name, reps in results.items():
        base, tuned = reps["default"], reps["nm-tuner"]
        lo, hi = tuned.confidence_interval()
        rows.append(
            [
                name,
                base.mean,
                tuned.mean,
                f"[{lo:.0f}, {hi:.0f}]",
                f"{tuned.mean / base.mean:.1f}x",
                f"{100 * win_rate(tuned, base):.0f}%",
            ]
        )
    report(
        render_table(
            ["workload", "default MB/s", "nm MB/s", "nm 95% CI",
             "mean gain", "paired win rate"],
            rows,
            title=(
                f"Robustness: {len(SEEDS)} random workloads per class, "
                f"{DURATION_S:.0f} s transfers, ANL->UChicago"
            ),
        )
    )

    for name, reps in results.items():
        assert reps["nm-tuner"].mean > reps["default"].mean, name
        assert win_rate(reps["nm-tuner"], reps["default"]) >= 0.5, name


#: Fault-rate grid: (label, bursts, burst length) over 60 epochs.
FAULT_GRID = [
    ("0%", 0, 1),
    ("10%", 2, 3),
    ("20%", 3, 4),
    ("30%", 3, 6),
]
FAULT_SEEDS = list(range(6))


def _fault_metric(n_bursts, burst_len, with_breaker):
    n_epochs = int(DURATION_S // 30)

    def run(seed: int) -> float:
        schedule = FaultSchedule.bursts(
            seed, n_epochs=n_epochs, n_bursts=n_bursts, burst_len=burst_len
        )
        trace = run_single(
            ANL_UC, NmTuner(), duration_s=DURATION_S, seed=seed,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(base_backoff_s=2.0),
            breaker=(
                CircuitBreaker(failure_threshold=2, cooldown_epochs=2)
                if with_breaker else None
            ),
        )
        return trace.total_bytes / 1e6 / DURATION_S

    return run


def test_fault_campaign_breaker_value(benchmark, report):
    def _race():
        out = {}
        for label, n_bursts, burst_len in FAULT_GRID:
            out[label] = compare(
                {
                    "retries": _fault_metric(n_bursts, burst_len, False),
                    "breaker": _fault_metric(n_bursts, burst_len, True),
                },
                FAULT_SEEDS,
            )
        return out

    results = benchmark.pedantic(_race, rounds=1, iterations=1)

    rows = []
    for label, n_bursts, burst_len in FAULT_GRID:
        reps = results[label]
        retries, breaker = reps["retries"], reps["breaker"]
        rate = n_bursts * burst_len / (DURATION_S / 30)
        rows.append(
            [
                label,
                f"{100 * rate:.0f}%" if n_bursts else "0%",
                retries.mean,
                breaker.mean,
                f"{100 * (breaker.mean / retries.mean - 1):+.1f}%",
                f"{100 * win_rate(breaker, retries):.0f}%",
            ]
        )
    report(
        render_table(
            ["campaign", "faulted epochs", "retries MB/s", "breaker MB/s",
             "breaker gain", "paired win rate"],
            rows,
            title=(
                f"Fault campaigns: nm-tuner, {len(FAULT_SEEDS)} seeded "
                f"bursty schedules per rate, {DURATION_S:.0f} s transfers, "
                "ANL->UChicago"
            ),
        )
    )

    # At the 20% fault rate the breaker must strictly beat retries alone.
    assert results["20%"]["breaker"].mean > results["20%"]["retries"].mean
    # With no faults the breaker never trips, so the arms must agree.
    clean = results["0%"]
    assert clean["breaker"].mean == clean["retries"].mean
