"""Robustness under random workloads (extension bench).

The paper evaluates one hand-picked load switch (§IV-B).  Production
endpoints see random job arrivals and traffic bursts; this bench races
default vs nm-tuner across a population of random workloads from
:mod:`repro.endpoint.workload` (Poisson compute jobs, bursty traffic) and
reports paired win rates and mean improvements with confidence intervals.
"""

import numpy as np

from repro.analysis.stats import steady_state_mean
from repro.core.base import StaticTuner
from repro.core.nm_tuner import NmTuner
from repro.endpoint.workload import BurstyTraffic, PoissonJobMix
from repro.experiments.replicate import compare, win_rate
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC

SEEDS = list(range(8))
DURATION_S = 1800.0

WORKLOADS = {
    "poisson-jobs": PoissonJobMix(arrival_per_hour=40.0,
                                  mean_duration_s=600.0, max_jobs=32),
    "bursty-traffic": BurstyTraffic(burst_streams=64, mean_quiet_s=300.0,
                                    mean_burst_s=200.0),
}


def _metric(workload, tuner_factory):
    def run(seed: int) -> float:
        schedule = workload.schedule(
            DURATION_S, np.random.default_rng(seed + 10_000)
        )
        trace = run_single(
            ANL_UC, tuner_factory(), load=schedule,
            duration_s=DURATION_S, seed=seed,
        )
        return steady_state_mean(trace, tail_fraction=0.8)

    return run


def test_robustness_random_workloads(benchmark, report):
    def _race():
        out = {}
        for name, workload in WORKLOADS.items():
            out[name] = compare(
                {
                    "default": _metric(workload, StaticTuner),
                    "nm-tuner": _metric(workload, NmTuner),
                },
                SEEDS,
            )
        return out

    results = benchmark.pedantic(_race, rounds=1, iterations=1)

    rows = []
    for name, reps in results.items():
        base, tuned = reps["default"], reps["nm-tuner"]
        lo, hi = tuned.confidence_interval()
        rows.append(
            [
                name,
                base.mean,
                tuned.mean,
                f"[{lo:.0f}, {hi:.0f}]",
                f"{tuned.mean / base.mean:.1f}x",
                f"{100 * win_rate(tuned, base):.0f}%",
            ]
        )
    report(
        render_table(
            ["workload", "default MB/s", "nm MB/s", "nm 95% CI",
             "mean gain", "paired win rate"],
            rows,
            title=(
                f"Robustness: {len(SEEDS)} random workloads per class, "
                f"{DURATION_S:.0f} s transfers, ANL->UChicago"
            ),
        )
    )

    for name, reps in results.items():
        assert reps["nm-tuner"].mean > reps["default"].mean, name
        assert win_rate(reps["nm-tuner"], reps["default"]) >= 0.5, name
