"""Robustness under random workloads and fault campaigns (extension bench).

The paper evaluates one hand-picked load switch (§IV-B).  Production
endpoints see random job arrivals and traffic bursts; this bench races
default vs nm-tuner across a population of random workloads from
:mod:`repro.endpoint.workload` (Poisson compute jobs, bursty traffic) and
reports paired win rates and mean improvements with confidence intervals.

The fault-campaign bench injects seeded bursty fault schedules
(:mod:`repro.faults`) at increasing fault rates and compares the tuned
transfer's throughput with retry/backoff alone against retry/backoff plus
the circuit breaker.

The warm-start bench quantifies checkpoint/resume's third leg
(:mod:`repro.checkpoint`): after a crash that loses the tuner, a restart
seeded from the best journaled configuration must recover steady-state
throughput within a few control epochs, where a cold restart re-climbs
from the Globus default.
"""

import numpy as np

from repro.analysis.stats import steady_state_mean
from repro.checkpoint import run_journaled, warm_start_x0
from repro.core.base import StaticTuner
from repro.core.nm_tuner import NmTuner
from repro.core.registry import make_tuner
from repro.endpoint.workload import BurstyTraffic, PoissonJobMix
from repro.experiments.replicate import compare, win_rate
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC
from repro.faults import CircuitBreaker, FaultSchedule, RetryPolicy

SEEDS = list(range(8))
DURATION_S = 1800.0

WORKLOADS = {
    "poisson-jobs": PoissonJobMix(arrival_per_hour=40.0,
                                  mean_duration_s=600.0, max_jobs=32),
    "bursty-traffic": BurstyTraffic(burst_streams=64, mean_quiet_s=300.0,
                                    mean_burst_s=200.0),
}


def _metric(workload, tuner_factory):
    def run(seed: int) -> float:
        schedule = workload.schedule(
            DURATION_S, np.random.default_rng(seed + 10_000)
        )
        trace = run_single(
            ANL_UC, tuner_factory(), load=schedule,
            duration_s=DURATION_S, seed=seed,
        )
        return steady_state_mean(trace, tail_fraction=0.8)

    return run


def test_robustness_random_workloads(benchmark, report):
    def _race():
        out = {}
        for name, workload in WORKLOADS.items():
            out[name] = compare(
                {
                    "default": _metric(workload, StaticTuner),
                    "nm-tuner": _metric(workload, NmTuner),
                },
                SEEDS,
            )
        return out

    results = benchmark.pedantic(_race, rounds=1, iterations=1)

    rows = []
    for name, reps in results.items():
        base, tuned = reps["default"], reps["nm-tuner"]
        lo, hi = tuned.confidence_interval()
        rows.append(
            [
                name,
                base.mean,
                tuned.mean,
                f"[{lo:.0f}, {hi:.0f}]",
                f"{tuned.mean / base.mean:.1f}x",
                f"{100 * win_rate(tuned, base):.0f}%",
            ]
        )
    report(
        render_table(
            ["workload", "default MB/s", "nm MB/s", "nm 95% CI",
             "mean gain", "paired win rate"],
            rows,
            title=(
                f"Robustness: {len(SEEDS)} random workloads per class, "
                f"{DURATION_S:.0f} s transfers, ANL->UChicago"
            ),
        )
    )

    for name, reps in results.items():
        assert reps["nm-tuner"].mean > reps["default"].mean, name
        assert win_rate(reps["nm-tuner"], reps["default"]) >= 0.5, name


#: Fault-rate grid: (label, bursts, burst length) over 60 epochs.
FAULT_GRID = [
    ("0%", 0, 1),
    ("10%", 2, 3),
    ("20%", 3, 4),
    ("30%", 3, 6),
]
FAULT_SEEDS = list(range(6))


def _fault_metric(n_bursts, burst_len, with_breaker):
    n_epochs = int(DURATION_S // 30)

    def run(seed: int) -> float:
        schedule = FaultSchedule.bursts(
            seed, n_epochs=n_epochs, n_bursts=n_bursts, burst_len=burst_len
        )
        trace = run_single(
            ANL_UC, NmTuner(), duration_s=DURATION_S, seed=seed,
            fault_schedule=schedule,
            retry_policy=RetryPolicy(base_backoff_s=2.0),
            breaker=(
                CircuitBreaker(failure_threshold=2, cooldown_epochs=2)
                if with_breaker else None
            ),
        )
        return trace.total_bytes / 1e6 / DURATION_S

    return run


def test_fault_campaign_breaker_value(benchmark, report):
    def _race():
        out = {}
        for label, n_bursts, burst_len in FAULT_GRID:
            out[label] = compare(
                {
                    "retries": _fault_metric(n_bursts, burst_len, False),
                    "breaker": _fault_metric(n_bursts, burst_len, True),
                },
                FAULT_SEEDS,
            )
        return out

    results = benchmark.pedantic(_race, rounds=1, iterations=1)

    rows = []
    for label, n_bursts, burst_len in FAULT_GRID:
        reps = results[label]
        retries, breaker = reps["retries"], reps["breaker"]
        rate = n_bursts * burst_len / (DURATION_S / 30)
        rows.append(
            [
                label,
                f"{100 * rate:.0f}%" if n_bursts else "0%",
                retries.mean,
                breaker.mean,
                f"{100 * (breaker.mean / retries.mean - 1):+.1f}%",
                f"{100 * win_rate(breaker, retries):.0f}%",
            ]
        )
    report(
        render_table(
            ["campaign", "faulted epochs", "retries MB/s", "breaker MB/s",
             "breaker gain", "paired win rate"],
            rows,
            title=(
                f"Fault campaigns: nm-tuner, {len(FAULT_SEEDS)} seeded "
                f"bursty schedules per rate, {DURATION_S:.0f} s transfers, "
                "ANL->UChicago"
            ),
        )
    )

    # At the 20% fault rate the breaker must strictly beat retries alone.
    assert results["20%"]["breaker"].mean > results["20%"]["retries"].mean
    # With no faults the breaker never trips, so the arms must agree.
    clean = results["0%"]
    assert clean["breaker"].mean == clean["retries"].mean


# -- warm-started restarts ----------------------------------------------------

# gss is excluded: golden-section search always probes its full bracket
# before narrowing, so a warm x0 cannot shorten its climb.
WARM_TUNERS = ["cd", "nm", "hj"]
WARM_SEEDS = list(range(6))
WARM_DURATION_S = 900.0


def _epochs_to_steady(trace, frac: float = 0.9) -> int:
    """Control epochs until observed throughput first reaches ``frac`` of
    the run's own steady-state mean."""
    steady = steady_state_mean(trace, tail_fraction=0.5)
    for i, e in enumerate(trace.epochs):
        if e.observed >= frac * steady:
            return i + 1
    return len(trace.epochs)


def test_warm_start_recovery(benchmark, report, tmp_path):
    """A restart seeded from the best journaled configuration must be
    back within 10% of steady state in <= 3 epochs; a cold restart
    re-climbs from the Globus default."""

    def _race():
        out = {}
        for tuner_name in WARM_TUNERS:
            cold_epochs, warm_epochs = [], []
            for seed in WARM_SEEDS:
                journal = tmp_path / f"{tuner_name}-{seed}.jnl"
                run_journaled(
                    journal, scenario="anl-uc", tuner=tuner_name,
                    seed=seed, duration_s=WARM_DURATION_S,
                )
                best = warm_start_x0(journal)
                assert best is not None
                # The crashed process is gone; restart the transfer with
                # a *fresh* tuner, cold (Globus default x0) vs warm
                # (x0 from the journal).
                cold = run_single(
                    ANL_UC, make_tuner(tuner_name, seed + 100),
                    duration_s=WARM_DURATION_S, seed=seed + 100,
                )
                warm = run_single(
                    ANL_UC, make_tuner(tuner_name, seed + 100),
                    duration_s=WARM_DURATION_S, seed=seed + 100, x0=best,
                )
                cold_epochs.append(_epochs_to_steady(cold))
                warm_epochs.append(_epochs_to_steady(warm))
            out[tuner_name] = (cold_epochs, warm_epochs)
        return out

    results = benchmark.pedantic(_race, rounds=1, iterations=1)

    rows = []
    for tuner_name, (cold_epochs, warm_epochs) in results.items():
        rows.append(
            [
                tuner_name,
                f"{float(np.mean(cold_epochs)):.1f}",
                f"{float(np.mean(warm_epochs)):.1f}",
                max(warm_epochs),
                f"{100 * np.mean([w <= 3 for w in warm_epochs]):.0f}%",
            ]
        )
    report(
        render_table(
            ["tuner", "cold epochs to 90%", "warm epochs to 90%",
             "warm worst case", "warm <= 3 epochs"],
            rows,
            title=(
                "Warm-started restarts: epochs to reach 90% of "
                f"steady-state throughput, {len(WARM_SEEDS)} seeds, "
                f"{WARM_DURATION_S:.0f} s transfers, ANL->UChicago"
            ),
        )
    )

    for tuner_name, (cold_epochs, warm_epochs) in results.items():
        # The headline guarantee: warm start is back within 10% of
        # steady state in at most 3 control epochs, on every seed.
        assert max(warm_epochs) <= 3, (tuner_name, warm_epochs)
        # And it never recovers slower than the cold restart.
        assert np.mean(warm_epochs) <= np.mean(cold_epochs), tuner_name
