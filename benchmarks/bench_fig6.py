"""Figure 6 — concurrency values adopted by the tuners over time.

Paper-reported trajectories (ANL→UChicago): without load the tuners settle
around nc≈5 (cd within ~100 s, cs/nm after ~500 s of large early steps);
under ext.cmp load cs/nm adopt nc 50-80; under ext.tfr they settle around
25 (tfr=16) and 35 (tfr=64).
"""

import numpy as np

from repro.experiments.figures import fig6
from repro.experiments.report import downsample, render_comparison, render_series

LOADS_SHOWN = ("none", "cmp16", "tfr64")


def test_fig6_nc_trajectories(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig6(duration_s=1800.0, seed=0), rounds=1, iterations=1
    )

    blocks = []
    for load in LOADS_SHOWN:
        series = {}
        times = None
        for tuner in ("cd-tuner", "cs-tuner", "nm-tuner"):
            tr = result.traces[load][tuner]
            t = tr.epoch_times().tolist()
            v = result.nc_trajectory(load, tuner).tolist()
            times = downsample(t, 15)
            series[tuner] = downsample(v, 15)
        blocks.append(
            render_series(times, series,
                          title=f"Fig 6 ({load}): nc adopted over time")
        )

    def tail_mean_nc(load, tuner):
        v = result.nc_trajectory(load, tuner)
        return float(np.mean(v[len(v) // 2:]))

    comparison = render_comparison(
        [
            ("none: settled nc (nm)", "~5", tail_mean_nc("none", "nm-tuner")),
            ("cmp16: settled nc (nm)", "50-80",
             tail_mean_nc("cmp16", "nm-tuner")),
            ("tfr64: settled nc (cs)", "~35",
             tail_mean_nc("tfr64", "cs-tuner")),
        ],
        title="Fig 6: paper vs measured",
    )
    report("\n\n".join(blocks) + "\n\n" + comparison)

    # Shape: adapted nc grows with compute load; cd moves in unit steps.
    assert tail_mean_nc("cmp16", "nm-tuner") > 2 * tail_mean_nc(
        "none", "nm-tuner"
    )
    cd = result.nc_trajectory("none", "cd-tuner")
    assert max(abs(int(b) - int(a)) for a, b in zip(cd, cd[1:])) <= 1
