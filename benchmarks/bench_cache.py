"""Run-cache throughput: a cold campaign vs its warm, cache-served rerun.

The content-addressed cache (:mod:`repro.cache`) makes repeated
experiments nearly free: the second time any run executes with the same
complete configuration, its traces come off disk bit-identical.  This
bench quantifies that on the quick campaign — every figure of the
evaluation, cold then warm against one store — and on a single 600 s
run, and enforces the ≥5x warm-rerun floor the cache promises.
"""

import statistics
import time

from repro.cache import RunCache
from repro.cache.backend import DirBackend
from repro.cache.chaos import ChaosPolicy, FaultyBackend
from repro.cache.http_store import CacheServer, HttpBackend
from repro.cache.resilience import BackendPolicy, ResilientBackend
from repro.cache.sqlite_store import SqliteBackend
from repro.core.nm_tuner import NmTuner
from repro.experiments.campaign import CampaignScale, run_campaign
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC

MIN_WARM_SPEEDUP = 5.0


def test_cache_cold_vs_warm_campaign(benchmark, report, tmp_path):
    store = RunCache(tmp_path / "campaign-cache")
    scale = CampaignScale.quick()

    t0 = time.perf_counter()
    cold = run_campaign(scale, cache=store)
    cold_s = time.perf_counter() - t0
    stats = store.stats()

    warm = benchmark.pedantic(
        lambda: run_campaign(scale, cache=store), rounds=3, iterations=1
    )
    warm_s = benchmark.stats.stats.mean

    assert warm.document() == cold.document(), "cache hit must be bit-identical"
    speedup = cold_s / warm_s
    report(
        render_table(
            ["pass", "wall s", "entries", "MB on disk"],
            [
                ["cold (simulate + store)", f"{cold_s:.2f}", stats.entries,
                 f"{stats.total_bytes / 1e6:.1f}"],
                ["warm (cache-served)", f"{warm_s:.2f}", stats.entries,
                 f"{stats.total_bytes / 1e6:.1f}"],
            ],
            title=(
                f"Quick campaign, cold vs warm rerun: {speedup:.1f}x "
                f"(identical reports; floor {MIN_WARM_SPEEDUP:.0f}x)"
            ),
        )
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm campaign only {speedup:.1f}x faster "
        f"(cold {cold_s:.2f}s, warm {warm_s:.2f}s)"
    )


def test_cache_single_run_hit_latency(benchmark, report, tmp_path):
    store = RunCache(tmp_path / "single-cache")

    t0 = time.perf_counter()
    fresh = run_single(ANL_UC, NmTuner(), duration_s=600.0, seed=0,
                       cache=store)
    cold_ms = 1e3 * (time.perf_counter() - t0)

    hit = benchmark.pedantic(
        lambda: run_single(ANL_UC, NmTuner(), duration_s=600.0, seed=0,
                           cache=store),
        rounds=10, iterations=1,
    )
    hit_ms = 1e3 * benchmark.stats.stats.mean

    assert hit.epochs == fresh.epochs and hit.steps == fresh.steps
    report(
        render_table(
            ["path", "ms"],
            [["simulate (600 s transfer)", f"{cold_ms:.1f}"],
             ["cache hit", f"{hit_ms:.1f}"]],
            title=(
                f"run_single hit latency: {cold_ms / hit_ms:.1f}x "
                "(bit-identical trace, epochs AND steps)"
            ),
        )
    )
    assert hit_ms < cold_ms


def _run(store):
    return run_single(ANL_UC, NmTuner(), duration_s=600.0, seed=0,
                      cache=store)


def _median_ms(fn, rounds):
    samples = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        samples.append(1e3 * (time.perf_counter() - t0))
    return statistics.median(samples)


def test_cache_backend_matrix(report, tmp_path):
    """dir / sqlite / http × cold / warm / degraded.

    Cold simulates and stores; warm serves the hit off the backend;
    degraded drives the same run through a backend whose every
    operation errors (total outage) — the armor must absorb it, so the
    degraded pass costs one re-simulation, never a crash, and its trace
    stays bit-identical to the cold pass.
    """
    policy = BackendPolicy.fast_test()

    def inner_for(kind, server):
        if kind == "dir":
            return DirBackend(tmp_path / "dir-store")
        if kind == "sqlite":
            return SqliteBackend(tmp_path / "cache.db")
        return HttpBackend(server.url)

    rows = []
    reference = _run(False)
    with CacheServer(DirBackend(tmp_path / "served")) as server:
        for kind in ("dir", "sqlite", "http"):
            inner = inner_for(kind, server)
            store = RunCache(
                spec=kind,
                backend=ResilientBackend(inner, policy=policy),
            )
            cold_ms = _median_ms(
                lambda: (store.backend.clear(), _run(store)), rounds=3
            )
            warm = _run(store)
            assert warm.epochs == reference.epochs
            assert warm.steps == reference.steps
            warm_ms = _median_ms(lambda: _run(store), rounds=15)

            down = RunCache(
                spec=kind,
                backend=ResilientBackend(
                    FaultyBackend(inner, ChaosPolicy(seed=0, error_rate=1.0)),
                    policy=policy,
                ),
            )
            degraded = _run(down)
            assert degraded.epochs == reference.epochs
            assert degraded.steps == reference.steps
            degraded_ms = _median_ms(lambda: _run(down), rounds=5)
            assert down.backend.counters.degraded > 0

            assert warm_ms < cold_ms, (
                f"{kind}: warm {warm_ms:.1f}ms not faster than "
                f"cold {cold_ms:.1f}ms"
            )
            rows.append([kind, f"{cold_ms:.2f}", f"{warm_ms:.2f}",
                         f"{degraded_ms:.2f}",
                         f"{cold_ms / warm_ms:.1f}x"])
            store.close()

    report(
        render_table(
            ["backend", "cold ms", "warm ms", "degraded ms", "hit speedup"],
            rows,
            title=(
                "Backend matrix, one 600 s run (degraded = total outage, "
                "absorbed; all traces bit-identical)"
            ),
        )
    )
