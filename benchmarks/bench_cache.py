"""Run-cache throughput: a cold campaign vs its warm, cache-served rerun.

The content-addressed cache (:mod:`repro.cache`) makes repeated
experiments nearly free: the second time any run executes with the same
complete configuration, its traces come off disk bit-identical.  This
bench quantifies that on the quick campaign — every figure of the
evaluation, cold then warm against one store — and on a single 600 s
run, and enforces the ≥5x warm-rerun floor the cache promises.
"""

import time

from repro.cache import RunCache
from repro.core.nm_tuner import NmTuner
from repro.experiments.campaign import CampaignScale, run_campaign
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import ANL_UC

MIN_WARM_SPEEDUP = 5.0


def test_cache_cold_vs_warm_campaign(benchmark, report, tmp_path):
    store = RunCache(tmp_path / "campaign-cache")
    scale = CampaignScale.quick()

    t0 = time.perf_counter()
    cold = run_campaign(scale, cache=store)
    cold_s = time.perf_counter() - t0
    stats = store.stats()

    warm = benchmark.pedantic(
        lambda: run_campaign(scale, cache=store), rounds=3, iterations=1
    )
    warm_s = benchmark.stats.stats.mean

    assert warm.document() == cold.document(), "cache hit must be bit-identical"
    speedup = cold_s / warm_s
    report(
        render_table(
            ["pass", "wall s", "entries", "MB on disk"],
            [
                ["cold (simulate + store)", f"{cold_s:.2f}", stats.entries,
                 f"{stats.total_bytes / 1e6:.1f}"],
                ["warm (cache-served)", f"{warm_s:.2f}", stats.entries,
                 f"{stats.total_bytes / 1e6:.1f}"],
            ],
            title=(
                f"Quick campaign, cold vs warm rerun: {speedup:.1f}x "
                f"(identical reports; floor {MIN_WARM_SPEEDUP:.0f}x)"
            ),
        )
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm campaign only {speedup:.1f}x faster "
        f"(cold {cold_s:.2f}s, warm {warm_s:.2f}s)"
    )


def test_cache_single_run_hit_latency(benchmark, report, tmp_path):
    store = RunCache(tmp_path / "single-cache")

    t0 = time.perf_counter()
    fresh = run_single(ANL_UC, NmTuner(), duration_s=600.0, seed=0,
                       cache=store)
    cold_ms = 1e3 * (time.perf_counter() - t0)

    hit = benchmark.pedantic(
        lambda: run_single(ANL_UC, NmTuner(), duration_s=600.0, seed=0,
                           cache=store),
        rounds=10, iterations=1,
    )
    hit_ms = 1e3 * benchmark.stats.stats.mean

    assert hit.epochs == fresh.epochs and hit.steps == fresh.steps
    report(
        render_table(
            ["path", "ms"],
            [["simulate (600 s transfer)", f"{cold_ms:.1f}"],
             ["cache hit", f"{hit_ms:.1f}"]],
            title=(
                f"run_single hit latency: {cold_ms / hit_ms:.1f}x "
                "(bit-identical trace, epochs AND steps)"
            ),
        )
    )
    assert hit_ms < cold_ms
