"""Figure 5 — observed throughput of the tuners under static external
loads (ANL→UChicago, tuning nc with np=8, 1800 s transfers).

Paper-reported steady-state observed throughputs (MB/s):

====== ======== ======= ======= ======= =======
load   default  cd      cs      nm      factor
====== ======== ======= ======= ======= =======
none     ~2500   ~3500   ~3500   ~3500   1.4x
cmp16     ~200    ~400   ~1500   ~1500     7x
cmp64     ~100      -       -    ~1000    10x
tfr16    ~1400   ~3000   ~3000   ~3000     2x
tfr64     ~900   ~1800   ~1800   ~1800     2x
====== ======== ======= ======= ======= =======
"""

from repro.experiments.figures import FIG5_LOADS, fig5
from repro.experiments.report import render_comparison, render_table

PAPER_DEFAULT = {"none": 2500, "cmp16": 200, "cmp64": 100,
                 "tfr16": 1400, "tfr64": 900}
PAPER_BEST_TUNER = {"none": 3500, "cmp16": 1500, "cmp64": 1000,
                    "tfr16": 3000, "tfr64": 1800}
PAPER_FACTOR = {"none": 1.4, "cmp16": 7.0, "cmp64": 10.0,
                "tfr16": 2.0, "tfr64": 2.0}


def test_fig5_observed_throughput_under_loads(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig5(duration_s=1800.0, seed=0), rounds=1, iterations=1
    )

    rows = []
    for load in FIG5_LOADS:
        row = [load]
        for tuner in ("default", "cd-tuner", "cs-tuner", "nm-tuner"):
            row.append(result.steady_observed(load, tuner))
        rows.append(row)
    table = render_table(
        ["load", "default", "cd-tuner", "cs-tuner", "nm-tuner"],
        rows,
        title="Fig 5: steady-state observed throughput (MB/s), ANL->UChicago",
    )

    comp_rows = []
    for load in FIG5_LOADS:
        best = max(
            result.steady_observed(load, t)
            for t in ("cd-tuner", "cs-tuner", "nm-tuner")
        )
        factor = best / result.steady_observed(load, "default")
        comp_rows.append(
            (f"{load}: default MB/s", PAPER_DEFAULT[load],
             result.steady_observed(load, "default"))
        )
        comp_rows.append(
            (f"{load}: best tuner MB/s", PAPER_BEST_TUNER[load], best)
        )
        comp_rows.append(
            (f"{load}: improvement", f"{PAPER_FACTOR[load]}x",
             f"{factor:.1f}x")
        )
    report(table + "\n\n" + render_comparison(comp_rows,
                                              title="Fig 5: paper vs measured"))

    # Shape assertions: tuners beat default everywhere; compute load hurts
    # default far more than the tuners.
    for load in FIG5_LOADS:
        best = max(
            result.steady_observed(load, t)
            for t in ("cd-tuner", "cs-tuner", "nm-tuner")
        )
        assert best > result.steady_observed(load, "default")
    assert result.improvement_over_default("cmp16", "nm-tuner") > 2.0
    assert result.improvement_over_default("cmp64", "nm-tuner") > 3.0
