"""Window-end dispatch throughput: population dispatch vs the scalar ladder.

The workload is a dispatch storm — B=64 cd-tuner seed replicates on
ANL→UChicago with ``epoch_s=1`` at ``dt=1``, so every span is one step
and every window closes and dispatches all 64 lanes.  Span math is a
sliver of the wall time; the window-end path (epoch close + tuner
dispatch) dominates, which is exactly what this PR vectorized.

Three paths over identical workloads:

* **serial scalar** — 64 ``run_single`` calls on the scalar engine;
* **batched baseline** — one ``run_batch`` with
  ``batched_close=False, dispatch=False``: the vectorized span
  substrate with the *pre-population* window end (one scalar
  ``close_epoch`` + one scalar ``_dispatch_epoch`` ladder per lane,
  per-lane boundary loops);
* **population dispatch** — the default pipeline: numpy epoch close
  (:mod:`repro.sim.batch.closing`), population proposals
  (:mod:`repro.sim.batch.dispatch`), and the lockstep boundary
  shortcuts.

Traces must be bit-identical across all three, lane for lane.  The
committed target (and the CI ``--floor``) is **>= 1.5x** population
over the batched baseline; the pytest regression gate is >= 1.35x
(the same gate-below-target discipline as ``bench_batch`` — the box is
noisy single-core, and the ratio of two sub-second walls doubles the
noise exposure).

Script mode is the CI ``batch-equivalence`` dispatch gate::

    PYTHONPATH=src python benchmarks/bench_dispatch.py --quick --floor 1.5

exits nonzero if the speedup falls below the floor or any lane
diverges from its scalar reference.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.core.registry import make_tuner
from repro.experiments.batch import SingleRunSpec, run_batch
from repro.experiments.parallel import replicate_seeds
from repro.experiments.report import render_table
from repro.experiments.runner import run_single
from repro.experiments.scenarios import SCENARIOS

SEED = 21
TUNER = "cd"
SCENARIO = "anl-uc"
B = 64
DURATION_S = 900.0
EPOCH_S = 1.0  # one step per window: the dispatch-dominated regime
TARGET_RATIO = 1.5  # committed target; CI passes --floor 1.5
GATE_RATIO = 1.35  # pytest regression gate (noise margin under target)


def _specs():
    scenario = SCENARIOS[SCENARIO]
    return [
        SingleRunSpec(scenario, make_tuner(TUNER, seed),
                      duration_s=DURATION_S, epoch_s=EPOCH_S, seed=seed)
        for seed in replicate_seeds(SEED, B)
    ]


def _run_serial():
    scenario = SCENARIOS[SCENARIO]
    return [
        run_single(scenario, make_tuner(TUNER, seed),
                   duration_s=DURATION_S, epoch_s=EPOCH_S, seed=seed,
                   cache=False)
        for seed in replicate_seeds(SEED, B)
    ]


def dispatch_measurement(rounds: int):
    """Interleaved best-of-``rounds``; returns
    (serial_s, baseline_s, pop_s, ratio, identical)."""
    best_serial = best_base = best_pop = float("inf")
    serial_traces = base_traces = pop_traces = None
    for _ in range(rounds):
        gc.collect()
        t0 = time.perf_counter()
        serial_traces = _run_serial()
        best_serial = min(best_serial, time.perf_counter() - t0)

        gc.collect()
        t0 = time.perf_counter()
        base_traces = run_batch(_specs(), batch=B, cache=False,
                                dispatch=False, batched_close=False)
        best_base = min(best_base, time.perf_counter() - t0)

        gc.collect()
        t0 = time.perf_counter()
        pop_traces = run_batch(_specs(), batch=B, cache=False)
        best_pop = min(best_pop, time.perf_counter() - t0)
    identical = all(
        b.epochs == s.epochs and b.steps == s.steps
        and p.epochs == s.epochs and p.steps == s.steps
        for s, b, p in zip(serial_traces, base_traces, pop_traces)
    )
    return best_serial, best_base, best_pop, best_base / best_pop, identical


def _block(serial_s, base_s, pop_s, ratio, identical, rounds):
    return render_table(
        ["path", "wall s", "runs/s"],
        [
            ["serial scalar", f"{serial_s:.3f}", f"{B / serial_s:.1f}"],
            ["batched, scalar window end",
             f"{base_s:.3f}", f"{B / base_s:.1f}"],
            ["population dispatch", f"{pop_s:.3f}", f"{B / pop_s:.1f}"],
        ],
        title=(f"window-end dispatch storm: {B} x {TUNER}-tuner "
               f"{DURATION_S:.0f} s replicates on {SCENARIO} at "
               f"epoch_s={EPOCH_S:.0f}, best of {rounds} interleaved"),
    ) + (
        f"\n\npopulation dispatch {ratio:.2f}x over the batched "
        f"baseline (target >= {TARGET_RATIO:.1f}x); "
        f"{serial_s / pop_s:.1f}x over serial; "
        f"all {B} traces bit-identical: {'yes' if identical else 'NO'}"
    )


# -- pytest entry (committed results) ----------------------------------------


def test_bench_dispatch_speedup(report):
    serial_s, base_s, pop_s, ratio, identical = dispatch_measurement(
        rounds=5)
    report(_block(serial_s, base_s, pop_s, ratio, identical, 5))
    assert identical, "a dispatched lane diverged from its scalar reference"
    assert ratio >= GATE_RATIO


# -- CI batch-equivalence dispatch gate --------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds for the CI gate")
    parser.add_argument("--floor", type=float, default=TARGET_RATIO,
                        help="fail below this population/baseline ratio")
    args = parser.parse_args(argv)
    rounds = 3 if args.quick else 5

    serial_s, base_s, pop_s, ratio, identical = dispatch_measurement(
        rounds)
    print(_block(serial_s, base_s, pop_s, ratio, identical, rounds))

    failed = False
    if not identical:
        print("\nFAIL: a dispatched lane diverged from its scalar "
              "reference")
        failed = True
    if ratio < args.floor:
        print(f"\nFAIL: population dispatch {ratio:.2f}x < "
              f"{args.floor:.2f}x floor")
        failed = True
    if not failed:
        print(f"\nOK: {ratio:.2f}x over the batched baseline at B={B}, "
              "traces bit-identical")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
