"""§IV-A text — the ANL→TACC variant of the Fig. 5 concurrency study.

Paper: "without any external load, the default and direct search tuners
achieve 1900 MB/s.  Although the achievable throughput without overhead is
2200 MB/s in the direct search tuners, because of the restart overhead,
they achieve the same throughput as default. ... For all other external
load cases, cs-tuner and nm-tuner obtain throughput improvements between
1.5x and 10x."
"""

from repro.endpoint.load import ExternalLoad
from repro.experiments.figures import tacc_concurrency
from repro.experiments.report import render_comparison, render_table

LOADS = {
    "none": ExternalLoad(),
    "cmp16": ExternalLoad(ext_cmp=16),
    "tfr64": ExternalLoad(ext_tfr=64),
}


def test_tacc_concurrency_study(benchmark, report):
    result = benchmark.pedantic(
        lambda: tacc_concurrency(duration_s=1800.0, seed=0, loads=LOADS),
        rounds=1,
        iterations=1,
    )

    rows = []
    for load in LOADS:
        for tuner in ("default", "cs-tuner", "nm-tuner"):
            rows.append(
                [
                    load,
                    tuner,
                    result.steady_observed(load, tuner),
                    result.steady_best_case(load, tuner),
                ]
            )
    table = render_table(
        ["load", "tuner", "observed", "best-case"],
        rows,
        title="ANL->TACC: steady-state throughput (MB/s)",
    )

    ratio_none = result.improvement_over_default("none", "nm-tuner")
    ratio_cmp = result.improvement_over_default("cmp16", "nm-tuner")
    ratio_tfr = result.improvement_over_default("tfr64", "cs-tuner")
    comparison = render_comparison(
        [
            ("no-load default MB/s", 1900,
             result.steady_observed("none", "default")),
            ("no-load tuner ~ default", "1.0x", f"{ratio_none:.2f}x"),
            ("cmp16 improvement", "1.5-10x", f"{ratio_cmp:.1f}x"),
            ("tfr64 improvement", "1.5-10x", f"{ratio_tfr:.1f}x"),
        ],
        title="ANL->TACC: paper vs measured",
    )
    report(table + "\n\n" + comparison)

    # Shapes: no-load tuning adds little on this buffer-limited path, but
    # loads open a clear gap.
    assert 0.8 < ratio_none < 1.6
    assert ratio_cmp > 1.5
    assert ratio_tfr > 1.5
