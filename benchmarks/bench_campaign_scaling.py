"""Campaign scaling: engine fast-path speedup and ``--jobs`` fan-out.

Two measurements, both committed to ``benchmarks/results/``:

* **Single-run fast path** — 1800 s fig5-style runs (fixed np=8, tuning
  nc) on the reference step pipeline (``fast_path=False``, everything
  recomputed every step) vs. the default fast path (change-point
  allocation caching + batched jitter draws).  Traces must be
  bit-identical (epochs AND steps); the speedup gate is >= 2x with a
  >= 3x target.
* **Campaign fan-out** — a quick-scale campaign timed on the reference
  engine serially (the pre-fast-path baseline) and on the fast path at
  ``jobs`` = 1/2/4.  Reports are asserted identical at every width.
  ``os.cpu_count()`` is recorded alongside: unit-level scaling needs
  real cores, so the headline number is *reference serial vs. fast
  path at --jobs 4* (the fast path alone must deliver >= 2.5x even on
  a single-core box, and fan-out stacks on top where cores exist).

Script mode is the CI ``perf-smoke`` gate::

    PYTHONPATH=src python benchmarks/bench_campaign_scaling.py --quick

exits nonzero if the fast path regresses below 2x over the reference
engine or if fast-path/reference traces diverge.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
import time
from contextlib import contextmanager

from repro.core.registry import make_tuner
from repro.endpoint.load import ExternalLoad
from repro.experiments import figures
from repro.experiments.batch import SingleRunSpec
from repro.experiments.campaign import CampaignScale, run_campaign
from repro.experiments.report import render_table
from repro.experiments.runner import run_pair, run_single
from repro.experiments.scenarios import SCENARIOS

SEED = 7
FULL_DURATION_S = 1800.0
QUICK_DURATION_S = 600.0
GATE_SPEEDUP = 2.0  # CI fails below this; the target is >= 3x
GATE_CAMPAIGN = 2.0  # regression gate; committed target is >= 2.5x

#: (tuner, load) fig5-style cells for the single-run measurement.
SINGLE_CASES = (("cs", "cmp16"), ("nm", "none"), ("cd", "cmp64"))


def _time_best(fn, rounds: int):
    best_dt, best_result = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        if best_dt is None or dt < best_dt:
            best_dt, best_result = dt, result
    return best_dt, best_result


def _fig5_style_run(fast_path: bool, duration_s: float, tuner: str,
                    load: str):
    return run_single(
        SCENARIOS["anl-uc"], make_tuner(tuner, SEED),
        load=ExternalLoad.parse(load), duration_s=duration_s,
        fixed_np=8, seed=SEED, fast_path=fast_path,
    )


def single_run_measurement(duration_s: float, rounds: int):
    """Reference vs fast path per (tuner, load) cell.

    Returns (table rows, min speedup, all traces bit-identical).
    """
    rows, min_speedup, all_identical = [], float("inf"), True
    for tuner, load in SINGLE_CASES:
        ref_dt, ref = _time_best(
            lambda: _fig5_style_run(False, duration_s, tuner, load), rounds)
        fast_dt, fast = _time_best(
            lambda: _fig5_style_run(True, duration_s, tuner, load), rounds)
        identical = ref.epochs == fast.epochs and ref.steps == fast.steps
        speedup = ref_dt / fast_dt
        min_speedup = min(min_speedup, speedup)
        all_identical = all_identical and identical
        rows.append([
            tuner, load, f"{ref_dt:.3f}", f"{fast_dt:.3f}",
            f"{speedup:.2f}x", "yes" if identical else "NO",
        ])
    return rows, min_speedup, all_identical


@contextmanager
def reference_engine():
    """Force the figure generators onto the ``fast_path=False`` pipeline
    — the serial pre-fast-path baseline the campaign numbers compare
    against.  (Only valid for in-process runs: ``jobs=1``.)"""
    originals = (figures.SingleRunSpec, figures.run_pair)
    figures.SingleRunSpec = functools.partial(
        SingleRunSpec, fast_path=False)
    figures.run_pair = functools.partial(run_pair, fast_path=False)
    try:
        yield
    finally:
        figures.SingleRunSpec, figures.run_pair = originals


def campaign_measurement(scale: CampaignScale, jobs_widths=(1, 2, 4)):
    """Reference serial campaign vs fast path at several ``jobs``.

    Returns (table rows, reference/jobs-4 reduction, reports identical).
    """
    with reference_engine():
        ref_dt, ref_result = _time_best(lambda: run_campaign(scale), 1)
    walls, results = {}, {}
    for jobs in jobs_widths:
        walls[jobs], results[jobs] = _time_best(
            lambda j=jobs: run_campaign(scale, jobs=j), 1)
    identical = all(
        results[j].sections == ref_result.sections for j in walls
    )
    rows = [["reference", 1, f"{ref_dt:.2f}", "1.00x"]]
    rows += [
        ["fast", j, f"{walls[j]:.2f}", f"{ref_dt / walls[j]:.2f}x"]
        for j in jobs_widths
    ]
    return rows, ref_dt / walls[max(jobs_widths)], identical


def _single_block(rows, min_speedup, identical, duration_s, rounds):
    return render_table(
        ["tuner", "load", "reference s", "fast s", "speedup", "identical"],
        rows,
        title=(f"engine fast path vs reference: {duration_s:.0f} s "
               f"fig5-style runs, best of {rounds}"),
    ) + (
        f"\n\nmin speedup {min_speedup:.2f}x (gate >= {GATE_SPEEDUP}x, "
        f"target >= 3x); traces bit-identical: "
        f"{'yes' if identical else 'NO'}"
    )


def _campaign_block(rows, reduction, identical, scale):
    return render_table(
        ["engine", "jobs", "wall s", "vs reference"],
        rows,
        title=(f"campaign wall time: quick scale "
               f"(duration_s={scale.duration_s:.0f}), "
               f"os.cpu_count()={os.cpu_count()}"),
    ) + (
        f"\n\nreference serial vs fast --jobs 4: {reduction:.2f}x "
        f"(target >= 2.5x); reports identical at every width: "
        f"{'yes' if identical else 'NO'}\n"
        "Unit fan-out needs real cores (cpu_count above); the fast "
        "path alone carries the reduction on single-core boxes."
    )


# -- pytest entry points (committed results) --------------------------------


def test_bench_fast_path_single_run(report):
    rows, min_speedup, identical = single_run_measurement(
        FULL_DURATION_S, rounds=3)
    report(_single_block(rows, min_speedup, identical, FULL_DURATION_S, 3))
    assert identical, "fast path diverged from the reference engine"
    assert min_speedup >= GATE_SPEEDUP


def test_bench_campaign_jobs_scaling(report):
    scale = CampaignScale.quick(seed=SEED)
    rows, reduction, identical = campaign_measurement(scale)
    report(_campaign_block(rows, reduction, identical, scale))
    assert identical, "parallel campaign report diverged"
    assert reduction >= GATE_CAMPAIGN


# -- CI perf-smoke gate -----------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="shorter runs for the CI perf-smoke gate")
    args = parser.parse_args(argv)
    duration = QUICK_DURATION_S if args.quick else FULL_DURATION_S
    rounds = 2 if args.quick else 3

    rows, min_speedup, identical = single_run_measurement(duration, rounds)
    print(_single_block(rows, min_speedup, identical, duration, rounds))

    failed = False
    if not identical:
        print("\nFAIL: fast-path trace diverged from the reference engine")
        failed = True
    if min_speedup < GATE_SPEEDUP:
        print(f"\nFAIL: fast path {min_speedup:.2f}x < "
              f"{GATE_SPEEDUP}x gate over the reference engine")
        failed = True

    # Cheap cross-width consistency check (full scaling numbers live in
    # the committed pytest bench results).
    scale = CampaignScale(duration_s=300.0, fig1_duration_s=120.0,
                          fig1_reps=1, seed=SEED)
    serial = run_campaign(scale, jobs=1)
    fanned = run_campaign(scale, jobs=2)
    if serial.sections != fanned.sections:
        print("\nFAIL: campaign report at --jobs 2 diverged from serial")
        failed = True
    else:
        print("\ncampaign report identical at --jobs 1 and 2: yes")

    if not failed:
        print(f"\nOK: min fast-path speedup {min_speedup:.2f}x, "
              "traces bit-identical")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
